// End-to-end tests for evrec/pipeline: encoder construction, the two-stage
// pipeline on a tiny world, representation caching (memory + disk), and
// feature-config evaluation.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

#include "evrec/pipeline/pipeline.h"
#include "evrec/util/binary_io.h"
#include "evrec/util/logging.h"

namespace evrec {
namespace pipeline {
namespace {

PipelineConfig TinyPipelineConfig() {
  PipelineConfig cfg;
  cfg.simnet = simnet::TinySimnetConfig();
  cfg.rep.embedding_dim = 8;
  cfg.rep.module_out_dim = 8;
  cfg.rep.hidden_dim = 16;
  cfg.rep.rep_dim = 8;
  cfg.rep.text_windows = {1, 3};
  cfg.rep.max_epochs = 2;
  cfg.rep.batch_size = 16;
  cfg.rep.min_document_frequency = 2;
  cfg.gbdt.num_trees = 30;
  cfg.gbdt.max_leaves = 8;
  cfg.gbdt.min_samples_leaf = 10;
  cfg.max_user_tokens = 64;
  cfg.max_event_tokens = 64;
  return cfg;
}

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SetLogLevel(LogLevel::kWarn);
    pipeline_ = new TwoStagePipeline(TinyPipelineConfig());
    pipeline_->Prepare();
    pipeline_->TrainRepresentation();
    pipeline_->ComputeRepVectors();
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    SetLogLevel(LogLevel::kInfo);
  }
  static TwoStagePipeline* pipeline_;
};

TwoStagePipeline* PipelineTest::pipeline_ = nullptr;

TEST(TruncateTest, CapsTokenStream) {
  text::EncodedText e;
  e.token_ids = {1, 2, 3, 4, 5};
  e.word_index = {0, 0, 1, 1, 2};
  auto t = Truncate(e, 3);
  EXPECT_EQ(t.size(), 3);
  EXPECT_EQ(t.word_index.size(), 3u);
  auto untouched = Truncate(e, 0);
  EXPECT_EQ(untouched.size(), 5);
  auto bigger = Truncate(e, 10);
  EXPECT_EQ(bigger.size(), 5);
}

TEST_F(PipelineTest, EncodersHaveNonTrivialVocabularies) {
  const EncoderSet& enc = pipeline_->encoders();
  EXPECT_GT(enc.UserTextVocab(), 50);
  EXPECT_GT(enc.EventTextVocab(), 50);
  EXPECT_GT(enc.UserCategoricalVocab(), 10);
}

TEST_F(PipelineTest, EventVocabularyExcludesPostCutoffKnowledge) {
  // Encoders were built from events created before the rep-train cutoff;
  // the number of such events is strictly smaller than all events.
  int pre_cutoff = 0;
  for (const auto& e : pipeline_->dataset().events) {
    if (e.create_day <
        static_cast<double>(pipeline_->config().simnet.rep_train_days)) {
      ++pre_cutoff;
    }
  }
  EXPECT_LT(pre_cutoff, pipeline_->dataset().num_events());
  EXPECT_GT(pre_cutoff, 0);
}

TEST_F(PipelineTest, RepDataMatchesWorld) {
  const auto& rd = pipeline_->rep_data();
  EXPECT_EQ(rd.num_users(), pipeline_->dataset().num_users());
  EXPECT_EQ(rd.num_events(), pipeline_->dataset().num_events());
  EXPECT_EQ(rd.pairs.size(), pipeline_->dataset().rep_train.size());
  // Token caps respected.
  for (const auto& docs : rd.user_inputs) {
    EXPECT_LE(docs[0].size(), 64);
  }
}

TEST_F(PipelineTest, RepVectorsComputedForEveryEntity) {
  EXPECT_EQ(pipeline_->user_reps().size(),
            static_cast<size_t>(pipeline_->dataset().num_users()));
  EXPECT_EQ(pipeline_->event_reps().size(),
            static_cast<size_t>(pipeline_->dataset().num_events()));
  for (const auto& v : pipeline_->user_reps()) {
    ASSERT_EQ(v.size(), 8u);
    for (float x : v) EXPECT_TRUE(std::isfinite(x));
  }
  // Serving cache holds one entry per entity.
  auto stats = pipeline_->cache_stats();
  EXPECT_EQ(stats.entries,
            static_cast<uint64_t>(pipeline_->dataset().num_users() +
                                  pipeline_->dataset().num_events()));
}

TEST_F(PipelineTest, EvaluateProducesSaneMetrics) {
  baseline::FeatureConfig cfg;
  cfg.base = true;
  cfg.cf = true;
  EvalResult r = pipeline_->EvaluateFeatureConfig(cfg);
  EXPECT_EQ(r.name, "base+cf");
  EXPECT_GT(r.auc, 0.5);  // baseline features beat random even when tiny
  EXPECT_LE(r.auc, 1.0);
  EXPECT_GE(r.pr60, 0.0);
  EXPECT_LE(r.pr60, 1.0);
  EXPECT_GE(r.pr80, 0.0);
  EXPECT_GT(r.logloss, 0.0);
  EXPECT_FALSE(r.curve.empty());
}

TEST_F(PipelineTest, RepOnlyConfigRuns) {
  baseline::FeatureConfig cfg;
  cfg.base = false;
  cfg.cf = false;
  cfg.rep_vectors = true;
  gbdt::GbdtModel combiner;
  EvalResult r = pipeline_->EvaluateFeatureConfig(cfg, &combiner);
  EXPECT_GT(r.auc, 0.0);
  EXPECT_EQ(combiner.num_features(), 24);  // vu(8) + ve(8) + products(8)
  EXPECT_EQ(combiner.num_trees(), 30);
}

TEST_F(PipelineTest, FingerprintSensitivity) {
  PipelineConfig a = TinyPipelineConfig();
  PipelineConfig b = TinyPipelineConfig();
  b.rep.rep_dim = 16;
  TwoStagePipeline pa(a), pb(b);
  EXPECT_NE(pa.RepModelFingerprint(), pb.RepModelFingerprint());
  TwoStagePipeline pa2(a);
  EXPECT_EQ(pa.RepModelFingerprint(), pa2.RepModelFingerprint());
}

TEST(PipelineDiskCacheTest, SecondRunLoadsCachedModel) {
  SetLogLevel(LogLevel::kWarn);
  PipelineConfig cfg = TinyPipelineConfig();
  cfg.cache_dir = testing::TempDir();
  cfg.rep.max_epochs = 1;
  cfg.simnet.seed = 900;  // distinct fingerprint from other tests

  TwoStagePipeline first(cfg);
  first.Prepare();
  first.TrainRepresentation();
  first.ComputeRepVectors();

  TwoStagePipeline second(cfg);
  second.Prepare();
  second.TrainRepresentation();  // should load from disk
  second.ComputeRepVectors();

  ASSERT_EQ(first.user_reps().size(), second.user_reps().size());
  for (size_t u = 0; u < first.user_reps().size(); u += 17) {
    for (size_t d = 0; d < first.user_reps()[u].size(); ++d) {
      EXPECT_FLOAT_EQ(first.user_reps()[u][d], second.user_reps()[u][d]);
    }
  }
  // Clean up the cache file.
  std::string path = testing::TempDir() + "/";
  std::remove((path + "evrec_repmodel_" +
               [](uint64_t v) {
                 char buf[32];
                 std::snprintf(buf, sizeof(buf), "%016llx",
                               static_cast<unsigned long long>(v));
                 return std::string(buf);
               }(first.RepModelFingerprint()) +
               ".bin")
                  .c_str());
  SetLogLevel(LogLevel::kInfo);
}

TEST(PipelineDiskCacheTest, CorruptCacheFileTriggersRetrain) {
  SetLogLevel(LogLevel::kWarn);
  PipelineConfig cfg = TinyPipelineConfig();
  cfg.cache_dir = testing::TempDir();
  cfg.rep.max_epochs = 1;
  cfg.simnet.seed = 901;  // distinct fingerprint from other tests

  std::string path;
  {
    TwoStagePipeline first(cfg);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(
                      first.RepModelFingerprint()));
    path = testing::TempDir() + "/evrec_repmodel_" + buf + ".bin";
    first.Prepare();
    model::TrainStats stats = first.TrainRepresentation();
    EXPECT_EQ(stats.epochs_run, 1);  // fresh train, no cache yet
    // The atomic publish left the final file and no sidecar behind.
    ASSERT_TRUE(FileExists(path));
    EXPECT_FALSE(FileExists(path + ".tmp"));
  }

  // Truncate the cache mid-payload: a torn write from a crashed run.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 64u);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 3));
  }

  // The corrupt cache must read as a miss, not a crash: the pipeline
  // retrains (epochs_run != 0) and still produces usable vectors.
  TwoStagePipeline second(cfg);
  second.Prepare();
  model::TrainStats stats = second.TrainRepresentation();
  EXPECT_EQ(stats.epochs_run, 1);
  second.ComputeRepVectors();
  EXPECT_FALSE(second.user_reps().empty());

  std::remove(path.c_str());
  SetLogLevel(LogLevel::kInfo);
}

TEST(PipelineSiameseTest, SiameseInitPathRuns) {
  SetLogLevel(LogLevel::kWarn);
  PipelineConfig cfg = TinyPipelineConfig();
  cfg.use_siamese_init = true;
  cfg.siamese.max_epochs = 1;
  cfg.rep.max_epochs = 1;
  TwoStagePipeline p(cfg);
  p.Prepare();
  model::TrainStats stats = p.TrainRepresentation();
  EXPECT_EQ(stats.epochs_run, 1);
  p.ComputeRepVectors();
  EXPECT_FALSE(p.event_reps().empty());
  SetLogLevel(LogLevel::kInfo);
}

}  // namespace
}  // namespace pipeline
}  // namespace evrec
