// Tests for evrec/text: normalization, tokenizers (including word
// provenance), DF-filtered vocabulary, and the encoder.

#include <gtest/gtest.h>

#include <cstdio>

#include "evrec/text/encoder.h"
#include "evrec/text/normalizer.h"
#include "evrec/text/tokenizer.h"
#include "evrec/text/vocabulary.h"

namespace evrec {
namespace text {
namespace {

// ---------- normalizer ----------

TEST(NormalizerTest, LowercasesAndStripsPunctuation) {
  EXPECT_EQ(Normalize("Hello, World!"), "hello world");
  EXPECT_EQ(Normalize("  a  b "), "a b");
  EXPECT_EQ(Normalize(""), "");
  EXPECT_EQ(Normalize("..."), "");
}

TEST(NormalizerTest, KeepsDigits) {
  EXPECT_EQ(Normalize("Room 42!"), "room 42");
}

TEST(NormalizerTest, NormalizeToWords) {
  auto words = NormalizeToWords("Ice-Cream Festival, 2016");
  ASSERT_EQ(words.size(), 4u);
  EXPECT_EQ(words[0], "ice");
  EXPECT_EQ(words[1], "cream");
  EXPECT_EQ(words[2], "festival");
  EXPECT_EQ(words[3], "2016");
}

// ---------- tokenizers ----------

TEST(TrigramTokenizerTest, EmitsBoundaryPaddedTrigrams) {
  LetterTrigramTokenizer tok;
  std::vector<Token> out;
  tok.Tokenize({"cream"}, &out);
  // #cream# -> #cr cre rea eam am#
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0].value, "#cr");
  EXPECT_EQ(out[1].value, "cre");
  EXPECT_EQ(out[2].value, "rea");
  EXPECT_EQ(out[3].value, "eam");
  EXPECT_EQ(out[4].value, "am#");
  for (const auto& t : out) EXPECT_EQ(t.word_index, 0);
}

TEST(TrigramTokenizerTest, ShortWords) {
  LetterTrigramTokenizer tok;
  std::vector<Token> out;
  tok.Tokenize({"a"}, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value, "#a#");
  out.clear();
  tok.Tokenize({"ab"}, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].value, "#ab");
  EXPECT_EQ(out[1].value, "ab#");
}

TEST(TrigramTokenizerTest, WordProvenanceTracked) {
  LetterTrigramTokenizer tok;
  std::vector<Token> out;
  tok.Tokenize({"ab", "cd"}, &out);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].word_index, 0);
  EXPECT_EQ(out[1].word_index, 0);
  EXPECT_EQ(out[2].word_index, 1);
  EXPECT_EQ(out[3].word_index, 1);
}

TEST(TrigramTokenizerTest, SkipsEmptyWords) {
  LetterTrigramTokenizer tok;
  std::vector<Token> out;
  tok.Tokenize({"", "ab", ""}, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].word_index, 1);
}

TEST(TrigramTokenizerTest, SharedMorphemesShareTrigrams) {
  // Words sharing a root share trigram tokens — the generalization
  // mechanism the paper borrows from DSSM.
  LetterTrigramTokenizer tok;
  std::vector<Token> a, b;
  tok.Tokenize({"jarest"}, &a);
  tok.Tokenize({"jarold"}, &b);
  int shared = 0;
  for (const auto& ta : a) {
    for (const auto& tb : b) {
      if (ta.value == tb.value) ++shared;
    }
  }
  EXPECT_GE(shared, 2);  // #ja, jar at least
}

TEST(UnigramTokenizerTest, OneTokenPerWord) {
  WordUnigramTokenizer tok;
  std::vector<Token> out;
  tok.Tokenize({"city:3", "page:17"}, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].value, "city:3");
  EXPECT_EQ(out[0].word_index, 0);
  EXPECT_EQ(out[1].value, "page:17");
  EXPECT_EQ(out[1].word_index, 1);
}

TEST(TokenizerFactoryTest, ByName) {
  EXPECT_NE(MakeTokenizer("letter_trigram"), nullptr);
  EXPECT_NE(MakeTokenizer("word_unigram"), nullptr);
  EXPECT_EQ(MakeTokenizer("bogus"), nullptr);
}

// ---------- vocabulary ----------

std::vector<Token> Toks(std::vector<std::string> words) {
  std::vector<Token> out;
  for (size_t i = 0; i < words.size(); ++i) {
    out.push_back(Token{words[i], static_cast<int>(i)});
  }
  return out;
}

TEST(VocabularyTest, DocumentFrequencyFilter) {
  Vocabulary v;
  v.AddDocument(Toks({"a", "b", "c"}));
  v.AddDocument(Toks({"a", "b"}));
  v.AddDocument(Toks({"a"}));
  v.Finalize(/*min_df=*/2, /*max_size=*/100);
  EXPECT_EQ(v.size(), 2);
  EXPECT_NE(v.Lookup("a"), Vocabulary::kUnknownId);
  EXPECT_NE(v.Lookup("b"), Vocabulary::kUnknownId);
  EXPECT_EQ(v.Lookup("c"), Vocabulary::kUnknownId);
  EXPECT_EQ(v.num_documents(), 3);
}

TEST(VocabularyTest, DuplicateTokensCountOncePerDocument) {
  Vocabulary v;
  v.AddDocument(Toks({"x", "x", "x"}));
  v.Finalize(2, 100);
  EXPECT_EQ(v.Lookup("x"), Vocabulary::kUnknownId);  // df == 1
}

TEST(VocabularyTest, MaxSizeKeepsMostFrequent) {
  Vocabulary v;
  for (int d = 0; d < 3; ++d) v.AddDocument(Toks({"hot"}));
  for (int d = 0; d < 2; ++d) v.AddDocument(Toks({"warm"}));
  v.AddDocument(Toks({"cold"}));
  v.Finalize(1, 2);
  EXPECT_EQ(v.size(), 2);
  EXPECT_NE(v.Lookup("hot"), Vocabulary::kUnknownId);
  EXPECT_NE(v.Lookup("warm"), Vocabulary::kUnknownId);
  EXPECT_EQ(v.Lookup("cold"), Vocabulary::kUnknownId);
}

TEST(VocabularyTest, IdsAreDenseAndDfAccessible) {
  Vocabulary v;
  v.AddDocument(Toks({"a", "b"}));
  v.AddDocument(Toks({"a"}));
  v.Finalize(1, 100);
  ASSERT_EQ(v.size(), 2);
  int ida = v.Lookup("a");
  int idb = v.Lookup("b");
  EXPECT_EQ(ida, 0);  // higher df first
  EXPECT_EQ(idb, 1);
  EXPECT_EQ(v.DocumentFrequency(ida), 2);
  EXPECT_EQ(v.DocumentFrequency(idb), 1);
  EXPECT_EQ(v.TokenOf(ida), "a");
}

TEST(VocabularyTest, DeterministicOrderOnTies) {
  Vocabulary v1, v2;
  for (auto* v : {&v1, &v2}) {
    v->AddDocument(Toks({"zeta", "alpha", "mid"}));
    v->Finalize(1, 100);
  }
  for (int i = 0; i < v1.size(); ++i) {
    EXPECT_EQ(v1.TokenOf(i), v2.TokenOf(i));
  }
  EXPECT_EQ(v1.TokenOf(0), "alpha");  // lexicographic tiebreak
}

TEST(VocabularyTest, MaxDfFilterDropsStopTokens) {
  Vocabulary v;
  // "the" appears in every document; "rare" in 40%.
  for (int d = 0; d < 10; ++d) {
    std::vector<std::string> words = {"the"};
    if (d < 4) words.push_back("rare");
    v.AddDocument(Toks(words));
  }
  v.Finalize(/*min_df=*/1, /*max_size=*/100, /*max_df_fraction=*/0.5);
  EXPECT_EQ(v.Lookup("the"), Vocabulary::kUnknownId);
  EXPECT_NE(v.Lookup("rare"), Vocabulary::kUnknownId);
}

TEST(VocabularyTest, MaxDfOfOneKeepsEverything) {
  Vocabulary v;
  for (int d = 0; d < 5; ++d) v.AddDocument(Toks({"always"}));
  v.Finalize(1, 100, 1.0);
  EXPECT_NE(v.Lookup("always"), Vocabulary::kUnknownId);
}

TEST(VocabularyTest, SerializeRoundTrip) {
  std::string path = testing::TempDir() + "/evrec_vocab_test.bin";
  Vocabulary v;
  v.AddDocument(Toks({"a", "b"}));
  v.AddDocument(Toks({"a"}));
  v.Finalize(1, 100);
  {
    BinaryWriter w(path);
    v.Serialize(w);
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(path);
  Vocabulary loaded = Vocabulary::Deserialize(r);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(loaded.size(), v.size());
  EXPECT_EQ(loaded.Lookup("a"), v.Lookup("a"));
  EXPECT_EQ(loaded.Lookup("b"), v.Lookup("b"));
  EXPECT_EQ(loaded.num_documents(), 2);
  std::remove(path.c_str());
}

// ---------- encoder ----------

TEST(EncoderTest, EncodeDropsUnknownTokens) {
  LetterTrigramTokenizer trigram;
  Vocabulary v = BuildVocabulary(trigram, {{"cream"}, {"cream"}}, 1, 1000);
  TextEncoder enc(std::make_unique<LetterTrigramTokenizer>(), std::move(v));
  EncodedText seen = enc.Encode({"cream"});
  EXPECT_EQ(seen.size(), 5);
  EncodedText unseen = enc.Encode({"zzzzq"});
  // No shared trigrams with "cream".
  EXPECT_TRUE(unseen.empty());
}

TEST(EncoderTest, PartialOverlapSurvives) {
  LetterTrigramTokenizer trigram;
  Vocabulary v = BuildVocabulary(trigram, {{"cream"}}, 1, 1000);
  TextEncoder enc(std::make_unique<LetterTrigramTokenizer>(), std::move(v));
  // "creak" shares #cr, cre, rea with "cream".
  EncodedText e = enc.Encode({"creak"});
  EXPECT_EQ(e.size(), 3);
}

TEST(EncoderTest, WordIndexAlignedWithTokens) {
  LetterTrigramTokenizer trigram;
  Vocabulary v = BuildVocabulary(trigram, {{"ab", "cd"}}, 1, 1000);
  TextEncoder enc(std::make_unique<LetterTrigramTokenizer>(), std::move(v));
  EncodedText e = enc.Encode({"ab", "cd"});
  ASSERT_EQ(e.token_ids.size(), e.word_index.size());
  ASSERT_EQ(e.size(), 4);
  EXPECT_EQ(e.word_index[0], 0);
  EXPECT_EQ(e.word_index[3], 1);
}

TEST(EncoderTest, SerializeRoundTrip) {
  std::string path = testing::TempDir() + "/evrec_encoder_test.bin";
  LetterTrigramTokenizer trigram;
  Vocabulary v = BuildVocabulary(trigram, {{"cream", "cone"}}, 1, 1000);
  TextEncoder enc(std::make_unique<LetterTrigramTokenizer>(), std::move(v));
  {
    BinaryWriter w(path);
    enc.Serialize(w);
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(path);
  auto loaded = TextEncoder::Deserialize(r);
  ASSERT_NE(loaded, nullptr);
  EncodedText a = enc.Encode({"cream"});
  EncodedText b = loaded->Encode({"cream"});
  EXPECT_EQ(a.token_ids, b.token_ids);
  std::remove(path.c_str());
}

TEST(BuildVocabularyTest, RespectsMinDfAcrossDocuments) {
  LetterTrigramTokenizer trigram;
  // "xq" appears in one doc only; with min_df=2 its trigrams are dropped.
  Vocabulary v =
      BuildVocabulary(trigram, {{"cream"}, {"cream", "xq"}}, 2, 1000);
  EXPECT_EQ(v.Lookup("#xq"), Vocabulary::kUnknownId);
  EXPECT_NE(v.Lookup("#cr"), Vocabulary::kUnknownId);
}

}  // namespace
}  // namespace text
}  // namespace evrec
