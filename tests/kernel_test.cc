// Tests for the SIMD kernel layer (la/simd/): bit-identical parity of
// every tier against the scalar reference over an exhaustive size sweep,
// dispatch/override behaviour, the flat blocked vector store, and the
// IVF-vs-exact scoring agreement the serving stack depends on.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "evrec/ann/ivf_index.h"
#include "evrec/la/flat_block.h"
#include "evrec/la/matrix.h"
#include "evrec/la/simd/dispatch.h"
#include "evrec/la/simd/kernels.h"
#include "evrec/la/vec_ops.h"
#include "evrec/serve/vector_store.h"
#include "evrec/store/rep_cache.h"
#include "evrec/util/rng.h"

namespace evrec {
namespace {

using la::simd::ActiveKernels;
using la::simd::ActiveSimdLevel;
using la::simd::KernelTable;
using la::simd::SetSimdLevelForTesting;
using la::simd::SimdLevel;
using la::simd::SimdLevelAvailable;
using la::simd::SimdLevelName;

// The sweep covers every tail length across several full 8-blocks,
// including n = 0 and the SIMD widths themselves.
constexpr int kMaxN = 67;

// Every tier compiled in AND supported by this CPU, scalar first.
std::vector<const KernelTable*> AvailableTables() {
  std::vector<const KernelTable*> tables = {la::simd::ScalarTable()};
  if (SimdLevelAvailable(SimdLevel::kSse2)) {
    tables.push_back(la::simd::Sse2Table());
  }
  if (SimdLevelAvailable(SimdLevel::kAvx2)) {
    tables.push_back(la::simd::Avx2Table());
  }
  return tables;
}

std::vector<SimdLevel> AvailableLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  if (SimdLevelAvailable(SimdLevel::kSse2)) levels.push_back(SimdLevel::kSse2);
  if (SimdLevelAvailable(SimdLevel::kAvx2)) levels.push_back(SimdLevel::kAvx2);
  return levels;
}

// Restores the dispatched tier after tests that sweep it.
struct TierGuard {
  SimdLevel orig = ActiveSimdLevel();
  ~TierGuard() { SetSimdLevelForTesting(orig); }
};

void FillUniform(Rng& rng, float* x, int n, double lo = -2.0,
                 double hi = 2.0) {
  for (int i = 0; i < n; ++i) {
    x[i] = static_cast<float>(rng.Uniform(lo, hi));
  }
}

// Bit-exact comparison: the parity contract is "same bits", not "close".
void ExpectBitEqual(const float* a, const float* b, int n,
                    const std::string& what) {
  ASSERT_EQ(0, std::memcmp(a, b, static_cast<size_t>(n) * sizeof(float)))
      << what << ": bits differ within " << n << " floats";
}

void ExpectBitEqualScalar(float a, float b, const std::string& what) {
  uint32_t ua, ub;
  std::memcpy(&ua, &a, 4);
  std::memcpy(&ub, &b, 4);
  ASSERT_EQ(ua, ub) << what << ": " << a << " vs " << b;
}

TEST(KernelParityTest, DotAndDotAndNormsBitIdentical) {
  const KernelTable* ref = la::simd::ScalarTable();
  Rng rng(101);
  for (const KernelTable* t : AvailableTables()) {
    for (int n = 0; n <= kMaxN; ++n) {
      std::vector<float> x(static_cast<size_t>(n) + 1),
          y(static_cast<size_t>(n) + 1);
      FillUniform(rng, x.data(), n);
      FillUniform(rng, y.data(), n);
      ExpectBitEqualScalar(t->dot(x.data(), y.data(), n),
                           ref->dot(x.data(), y.data(), n),
                           "dot n=" + std::to_string(n));
      float d1, a1, b1, d2, a2, b2;
      t->dot_and_norms(x.data(), y.data(), n, &d1, &a1, &b1);
      ref->dot_and_norms(x.data(), y.data(), n, &d2, &a2, &b2);
      ExpectBitEqualScalar(d1, d2, "dot_and_norms.dot n=" + std::to_string(n));
      ExpectBitEqualScalar(a1, a2, "dot_and_norms.a n=" + std::to_string(n));
      ExpectBitEqualScalar(b1, b2, "dot_and_norms.b n=" + std::to_string(n));
    }
  }
}

TEST(KernelParityTest, ElementwiseKernelsBitIdentical) {
  const KernelTable* ref = la::simd::ScalarTable();
  Rng rng(102);
  for (const KernelTable* t : AvailableTables()) {
    for (int n = 0; n <= kMaxN; ++n) {
      std::vector<float> x(static_cast<size_t>(n) + 1),
          y0(static_cast<size_t>(n) + 1), a(static_cast<size_t>(n) + 1),
          b(static_cast<size_t>(n) + 1);
      FillUniform(rng, x.data(), n);
      FillUniform(rng, y0.data(), n);
      FillUniform(rng, a.data(), n);
      FillUniform(rng, b.data(), n);
      const float alpha = static_cast<float>(rng.Uniform(-1.5, 1.5));

      std::vector<float> y1 = y0, y2 = y0;
      t->axpy(alpha, x.data(), y1.data(), n);
      ref->axpy(alpha, x.data(), y2.data(), n);
      ExpectBitEqual(y1.data(), y2.data(), n, "axpy n=" + std::to_string(n));

      std::vector<float> s1 = x, s2 = x;
      t->scale(alpha, s1.data(), n);
      ref->scale(alpha, s2.data(), n);
      ExpectBitEqual(s1.data(), s2.data(), n, "scale n=" + std::to_string(n));

      std::vector<float> o1(static_cast<size_t>(n) + 1),
          o2(static_cast<size_t>(n) + 1);
      t->add(a.data(), b.data(), o1.data(), n);
      ref->add(a.data(), b.data(), o2.data(), n);
      ExpectBitEqual(o1.data(), o2.data(), n, "add n=" + std::to_string(n));
    }
  }
}

TEST(KernelParityTest, TanhKernelsBitIdentical) {
  const KernelTable* ref = la::simd::ScalarTable();
  Rng rng(103);
  for (const KernelTable* t : AvailableTables()) {
    for (int n = 0; n <= kMaxN; ++n) {
      std::vector<float> x(static_cast<size_t>(n) + 1),
          dy(static_cast<size_t>(n) + 1), dx0(static_cast<size_t>(n) + 1);
      // Wide range so the sweep crosses the clamp on both sides.
      FillUniform(rng, x.data(), n, -10.0, 10.0);
      FillUniform(rng, dy.data(), n);
      FillUniform(rng, dx0.data(), n);

      std::vector<float> f1(static_cast<size_t>(n) + 1),
          f2(static_cast<size_t>(n) + 1);
      t->tanh_forward(x.data(), f1.data(), n);
      ref->tanh_forward(x.data(), f2.data(), n);
      ExpectBitEqual(f1.data(), f2.data(), n,
                     "tanh_forward n=" + std::to_string(n));

      std::vector<float> d1(static_cast<size_t>(n) + 1),
          d2(static_cast<size_t>(n) + 1);
      t->tanh_backward(f2.data(), dy.data(), d1.data(), n);
      ref->tanh_backward(f2.data(), dy.data(), d2.data(), n);
      ExpectBitEqual(d1.data(), d2.data(), n,
                     "tanh_backward n=" + std::to_string(n));

      std::vector<float> acc1 = dx0, acc2 = dx0;
      t->tanh_backward_accum(f2.data(), dy.data(), acc1.data(), n);
      ref->tanh_backward_accum(f2.data(), dy.data(), acc2.data(), n);
      ExpectBitEqual(acc1.data(), acc2.data(), n,
                     "tanh_backward_accum n=" + std::to_string(n));
    }
  }
}

TEST(KernelParityTest, FusedGradInputBitIdentical) {
  const KernelTable* ref = la::simd::ScalarTable();
  Rng rng(104);
  for (const KernelTable* t : AvailableTables()) {
    for (int n = 0; n <= kMaxN; ++n) {
      std::vector<float> x(static_cast<size_t>(n) + 1),
          w(static_cast<size_t>(n) + 1), gw0(static_cast<size_t>(n) + 1),
          dx0(static_cast<size_t>(n) + 1);
      FillUniform(rng, x.data(), n);
      FillUniform(rng, w.data(), n);
      FillUniform(rng, gw0.data(), n);
      FillUniform(rng, dx0.data(), n);
      const float dyi = static_cast<float>(rng.Uniform(-1.0, 1.0));

      std::vector<float> gw1 = gw0, dx1 = dx0, gw2 = gw0, dx2 = dx0;
      t->fused_grad_input(dyi, x.data(), w.data(), gw1.data(), dx1.data(), n);
      ref->fused_grad_input(dyi, x.data(), w.data(), gw2.data(), dx2.data(),
                            n);
      ExpectBitEqual(gw1.data(), gw2.data(), n,
                     "fused_grad_input.gw n=" + std::to_string(n));
      ExpectBitEqual(dx1.data(), dx2.data(), n,
                     "fused_grad_input.dx n=" + std::to_string(n));
    }
  }
}

TEST(KernelParityTest, MatrixKernelsBitIdentical) {
  const KernelTable* ref = la::simd::ScalarTable();
  Rng rng(105);
  const int kRows[] = {1, 3, 8};
  for (const KernelTable* t : AvailableTables()) {
    for (int rows : kRows) {
      for (int cols = 0; cols <= kMaxN; ++cols) {
        size_t mn = static_cast<size_t>(rows) * cols + 1;
        std::vector<float> m(mn), x(static_cast<size_t>(cols) + 1),
            y(static_cast<size_t>(rows) + 1);
        FillUniform(rng, m.data(), rows * cols);
        FillUniform(rng, x.data(), cols);
        FillUniform(rng, y.data(), rows);
        // Zero some y rows to exercise the sparse-skip path.
        if (rows > 1) y[1] = 0.0f;

        std::vector<float> o1(static_cast<size_t>(rows) + 1),
            o2(static_cast<size_t>(rows) + 1);
        t->gemv(m.data(), rows, cols, x.data(), o1.data());
        ref->gemv(m.data(), rows, cols, x.data(), o2.data());
        ExpectBitEqual(o1.data(), o2.data(), rows,
                       "gemv " + std::to_string(rows) + "x" +
                           std::to_string(cols));

        std::vector<float> g0(static_cast<size_t>(cols) + 1);
        FillUniform(rng, g0.data(), cols);
        std::vector<float> g1 = g0, g2 = g0;
        t->gemv_transposed_accum(m.data(), rows, cols, y.data(), g1.data());
        ref->gemv_transposed_accum(m.data(), rows, cols, y.data(), g2.data());
        ExpectBitEqual(g1.data(), g2.data(), cols,
                       "gemv_t_accum " + std::to_string(rows) + "x" +
                           std::to_string(cols));

        std::vector<float> m1 = m, m2 = m;
        t->add_outer(m1.data(), rows, cols, 0.37f, y.data(), x.data());
        ref->add_outer(m2.data(), rows, cols, 0.37f, y.data(), x.data());
        ExpectBitEqual(m1.data(), m2.data(), rows * cols,
                       "add_outer " + std::to_string(rows) + "x" +
                           std::to_string(cols));
      }
    }
  }
}

TEST(KernelParityTest, Block8KernelsBitIdentical) {
  const KernelTable* ref = la::simd::ScalarTable();
  Rng rng(106);
  for (const KernelTable* t : AvailableTables()) {
    for (int dim = 0; dim <= kMaxN; ++dim) {
      std::vector<float> q(static_cast<size_t>(dim) + 1);
      std::vector<float> block(static_cast<size_t>(dim) * 8 + 1);
      FillUniform(rng, q.data(), dim);
      FillUniform(rng, block.data(), dim * 8);

      float d1[8], d2[8], s1[8], s2[8];
      t->dot_block8(q.data(), block.data(), dim, d1);
      ref->dot_block8(q.data(), block.data(), dim, d2);
      ExpectBitEqual(d1, d2, 8, "dot_block8 dim=" + std::to_string(dim));

      t->dot_sqn_block8(q.data(), block.data(), dim, d1, s1);
      ref->dot_sqn_block8(q.data(), block.data(), dim, d2, s2);
      ExpectBitEqual(d1, d2, 8, "dot_sqn_block8.dots dim=" +
                                    std::to_string(dim));
      ExpectBitEqual(s1, s2, 8, "dot_sqn_block8.sqns dim=" +
                                    std::to_string(dim));
    }
  }
}

TEST(KernelTest, TanhPolyAccuracy) {
  // The shared rational polynomial must stay well inside the library's
  // 1e-6 activation tolerance against the libm double-precision tanh.
  const KernelTable* ref = la::simd::ScalarTable();
  double max_err = 0.0;
  for (int i = -90000; i <= 90000; ++i) {
    float x = static_cast<float>(i) * 1e-4f;
    float y;
    ref->tanh_forward(&x, &y, 1);
    double err = std::fabs(static_cast<double>(y) -
                           std::tanh(static_cast<double>(x)));
    if (err > max_err) max_err = err;
  }
  EXPECT_LT(max_err, 1e-6);
  // Saturation and symmetry at the edges.
  float x = 0.0f, y = -1.0f;
  ref->tanh_forward(&x, &y, 1);
  EXPECT_EQ(0.0f, y);
  x = 100.0f;
  ref->tanh_forward(&x, &y, 1);
  EXPECT_NEAR(1.0f, y, 1e-6f);
  x = -100.0f;
  ref->tanh_forward(&x, &y, 1);
  EXPECT_NEAR(-1.0f, y, 1e-6f);
}

TEST(DispatchTest, ActiveLevelIsAvailable) {
  EXPECT_TRUE(SimdLevelAvailable(ActiveSimdLevel()));
  EXPECT_TRUE(SimdLevelAvailable(SimdLevel::kScalar));
  EXPECT_NE(nullptr, la::simd::ScalarTable());
}

TEST(DispatchTest, EnvOverrideSelectsRequestedTier) {
  // check.sh runs this binary under EVREC_SIMD=scalar|sse2|avx2; when the
  // requested tier is available the dispatcher must actually be on it.
  const char* env = std::getenv("EVREC_SIMD");
  if (env == nullptr) GTEST_SKIP() << "EVREC_SIMD not set";
  std::string want(env);
  SimdLevel level = ActiveSimdLevel();
  if (want == "scalar") {
    EXPECT_EQ(SimdLevel::kScalar, level);
  } else if (want == "sse2" && SimdLevelAvailable(SimdLevel::kSse2)) {
    EXPECT_EQ(SimdLevel::kSse2, level);
  } else if (want == "avx2" && SimdLevelAvailable(SimdLevel::kAvx2)) {
    EXPECT_EQ(SimdLevel::kAvx2, level);
  }
}

TEST(DispatchTest, SetSimdLevelForTestingSweepsTiers) {
  TierGuard guard;
  for (SimdLevel level : AvailableLevels()) {
    SetSimdLevelForTesting(level);
    EXPECT_EQ(level, ActiveSimdLevel()) << SimdLevelName(level);
  }
}

TEST(DispatchTest, PublicEntryPointsFollowActiveTier) {
  // la::DotF / la::TanhForward / Matrix::Gemv route through the dispatched
  // table; under every tier they must reproduce the scalar-tier bits.
  TierGuard guard;
  Rng rng(107);
  const int n = 37;
  std::vector<float> x(n), y(n);
  FillUniform(rng, x.data(), n);
  FillUniform(rng, y.data(), n);
  la::Matrix m(5, n);
  FillUniform(rng, m.data(), 5 * n);

  SetSimdLevelForTesting(SimdLevel::kScalar);
  float dot_ref = la::DotF(x.data(), y.data(), n);
  std::vector<float> tanh_ref(n), gemv_ref(5);
  la::TanhForward(x.data(), tanh_ref.data(), n);
  m.Gemv(x.data(), gemv_ref.data());

  for (SimdLevel level : AvailableLevels()) {
    SetSimdLevelForTesting(level);
    std::string name = SimdLevelName(level);
    ExpectBitEqualScalar(la::DotF(x.data(), y.data(), n), dot_ref,
                         "la::DotF @" + name);
    std::vector<float> tanh_out(n), gemv_out(5);
    la::TanhForward(x.data(), tanh_out.data(), n);
    ExpectBitEqual(tanh_out.data(), tanh_ref.data(), n,
                   "la::TanhForward @" + name);
    m.Gemv(x.data(), gemv_out.data());
    ExpectBitEqual(gemv_out.data(), gemv_ref.data(), 5,
                   "Matrix::Gemv @" + name);
  }
}

TEST(FlatVectorBlockTest, AlignmentLayoutAndPadding) {
  la::FlatVectorBlock block(5);
  Rng rng(108);
  std::vector<std::vector<float>> vecs;
  for (int i = 0; i < 11; ++i) {
    std::vector<float> v(5);
    FillUniform(rng, v.data(), 5);
    vecs.push_back(v);
    EXPECT_EQ(i, block.Append(v));
  }
  EXPECT_EQ(11, block.size());
  EXPECT_EQ(2, block.num_blocks());
  // The allocation is 64-byte aligned; every block base is at least
  // 32-byte aligned (stride dim*32 bytes).
  EXPECT_EQ(0u, reinterpret_cast<uintptr_t>(block.BlockData(0)) % 64);
  for (int b = 0; b < block.num_blocks(); ++b) {
    EXPECT_EQ(0u, reinterpret_cast<uintptr_t>(block.BlockData(b)) % 32)
        << "block " << b;
  }
  // Round-trip and interleaved layout.
  for (int i = 0; i < 11; ++i) {
    EXPECT_EQ(vecs[static_cast<size_t>(i)], block.Get(i)) << "slot " << i;
  }
  const float* b1 = block.BlockData(1);
  for (int d = 0; d < 5; ++d) {
    EXPECT_EQ(vecs[9][static_cast<size_t>(d)], b1[d * 8 + 1]);
    // Padding lanes 3..7 of the last block are zero at every dimension.
    for (int l = 3; l < 8; ++l) {
      EXPECT_EQ(0.0f, b1[d * 8 + l]) << "d=" << d << " lane=" << l;
    }
  }
}

TEST(FlatVectorBlockTest, ResizeGrowsZeroedAndShrinkRezeroes) {
  la::FlatVectorBlock block(3);
  block.Resize(20);
  EXPECT_EQ(20, block.size());
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(std::vector<float>(3, 0.0f), block.Get(i)) << i;
  }
  std::vector<float> v = {1.0f, 2.0f, 3.0f};
  for (int i = 0; i < 20; ++i) block.Set(i, v.data());
  block.Resize(9);
  EXPECT_EQ(9, block.size());
  EXPECT_EQ(2, block.num_blocks());
  // Slots 9..15 of block 1 must be re-zeroed padding.
  const float* b1 = block.BlockData(1);
  for (int d = 0; d < 3; ++d) {
    EXPECT_EQ(v[static_cast<size_t>(d)], b1[d * 8 + 0]);
    for (int l = 1; l < 8; ++l) {
      EXPECT_EQ(0.0f, b1[d * 8 + l]) << "d=" << d << " lane=" << l;
    }
  }
  // Growing back exposes zeros, not the stale values.
  block.Resize(12);
  EXPECT_EQ(std::vector<float>(3, 0.0f), block.Get(10));
}

TEST(FlatVectorBlockTest, DotAndCosineMatchSequentialReference) {
  const int dim = 19;
  la::FlatVectorBlock block(dim);
  Rng rng(109);
  std::vector<std::vector<float>> vecs;
  std::vector<float> q(dim);
  FillUniform(rng, q.data(), dim);
  for (int i = 0; i < 13; ++i) {
    std::vector<float> v(dim);
    FillUniform(rng, v.data(), dim);
    vecs.push_back(v);
    block.Append(v);
  }
  std::vector<float> dots(13), cosines(13);
  block.DotAll(q.data(), dots.data());
  block.CosineAll(q.data(), cosines.data());
  for (int i = 0; i < 13; ++i) {
    // dot_block8 accumulates each lane sequentially over d — exactly a
    // plain ordered sum — so the reference is bit-exact, not "near".
    float want = 0.0f, sqn = 0.0f;
    for (int d = 0; d < dim; ++d) {
      want += q[static_cast<size_t>(d)] * vecs[static_cast<size_t>(i)]
                                              [static_cast<size_t>(d)];
      sqn += vecs[static_cast<size_t>(i)][static_cast<size_t>(d)] *
             vecs[static_cast<size_t>(i)][static_cast<size_t>(d)];
    }
    ExpectBitEqualScalar(dots[static_cast<size_t>(i)], want,
                         "DotAll slot " + std::to_string(i));
    float q2 = ActiveKernels().dot(q.data(), q.data(), dim);
    float want_cos = want / std::sqrt(q2 * sqn);
    ExpectBitEqualScalar(cosines[static_cast<size_t>(i)], want_cos,
                         "CosineAll slot " + std::to_string(i));
  }
}

TEST(FlatVectorBlockTest, ZeroVectorsScoreZero) {
  la::FlatVectorBlock block(4);
  std::vector<float> zero(4, 0.0f), unit = {1.0f, 0.0f, 0.0f, 0.0f};
  block.Append(zero);
  block.Append(unit);
  std::vector<float> scores(2, -1.0f);
  block.CosineAll(unit.data(), scores.data());
  EXPECT_EQ(0.0f, scores[0]);
  EXPECT_EQ(1.0f, scores[1]);
  // Degenerate query: everything scores 0.
  block.CosineAll(zero.data(), scores.data());
  EXPECT_EQ(0.0f, scores[0]);
  EXPECT_EQ(0.0f, scores[1]);
}

// Regression for the float-score unification (satellite: IVF and the
// exact serve:: scorer must agree): both paths score the same corpus for
// the same queries, and the returned rankings must match.
TEST(IvfExactAgreementTest, SearchExactMatchesScoreCandidates) {
  const int dim = 16;
  const int num_vectors = 60;
  Rng rng(110);
  std::vector<std::vector<float>> vectors;
  for (int i = 0; i < num_vectors; ++i) {
    // Three well-separated direction clusters plus noise, so the top-k
    // ordering has real margins and both paths must rank identically.
    std::vector<float> v(dim);
    int c = i % 3;
    for (int d = 0; d < dim; ++d) {
      double base = (d % 3 == c) ? 2.0 : 0.1;
      v[static_cast<size_t>(d)] =
          static_cast<float>(base + rng.Uniform(-0.05, 0.05));
    }
    vectors.push_back(v);
  }

  ann::IvfIndex index;
  ann::IvfConfig config;
  config.num_lists = 6;
  index.Build(vectors, config);
  ASSERT_TRUE(index.built());
  ASSERT_EQ(num_vectors, index.size());

  store::RepVectorCache cache(2, 1024);
  serve::RepCacheVectorStore vstore(&cache);
  std::vector<int> ids;
  for (int i = 0; i < num_vectors; ++i) {
    vstore.Put(store::EntityKind::kEvent, i, vectors[static_cast<size_t>(i)]);
    ids.push_back(i);
  }

  for (int qi = 0; qi < 5; ++qi) {
    std::vector<float> q(dim);
    int c = qi % 3;
    for (int d = 0; d < dim; ++d) {
      q[static_cast<size_t>(d)] = static_cast<float>(
          ((d % 3 == c) ? 2.0 : 0.1) + rng.Uniform(-0.05, 0.05));
    }
    const int k = 10;
    std::vector<ann::SearchResult> ivf = index.SearchExact(q, k);
    std::vector<serve::ScoredCandidate> exact = serve::TopK(
        serve::ScoreCandidates(&vstore, store::EntityKind::kEvent, q, ids,
                               nullptr),
        k);
    ASSERT_EQ(ivf.size(), exact.size());
    for (size_t i = 0; i < ivf.size(); ++i) {
      EXPECT_EQ(exact[i].id, ivf[i].id) << "query " << qi << " rank " << i;
      // IVF scores dot-on-normalized copies; serve scores cosine-on-raw.
      // Same quantity through different roundings: near, not bit-equal.
      EXPECT_NEAR(exact[i].score, ivf[i].score, 1e-4f)
          << "query " << qi << " rank " << i;
    }
    // Full-probe approximate search IS the exact search (bit-identical).
    std::vector<ann::SearchResult> full =
        index.Search(q, k, index.num_lists());
    ASSERT_EQ(ivf.size(), full.size());
    for (size_t i = 0; i < ivf.size(); ++i) {
      EXPECT_EQ(ivf[i].id, full[i].id);
      ExpectBitEqualScalar(ivf[i].score, full[i].score,
                           "full-probe rank " + std::to_string(i));
    }
  }
}

// The whole point of the tier contract: ScoreCandidates returns the same
// bits no matter which tier runs.
TEST(IvfExactAgreementTest, ScoreCandidatesBitIdenticalAcrossTiers) {
  TierGuard guard;
  const int dim = 24;
  Rng rng(111);
  store::RepVectorCache cache(2, 1024);
  serve::RepCacheVectorStore vstore(&cache);
  std::vector<int> ids;
  for (int i = 0; i < 21; ++i) {
    std::vector<float> v(dim);
    FillUniform(rng, v.data(), dim);
    vstore.Put(store::EntityKind::kEvent, i, v);
    ids.push_back(i);
  }
  std::vector<float> q(dim);
  FillUniform(rng, q.data(), dim);

  SetSimdLevelForTesting(SimdLevel::kScalar);
  std::vector<serve::ScoredCandidate> ref = serve::ScoreCandidates(
      &vstore, store::EntityKind::kEvent, q, ids, nullptr);
  for (SimdLevel level : AvailableLevels()) {
    SetSimdLevelForTesting(level);
    std::vector<serve::ScoredCandidate> got = serve::ScoreCandidates(
        &vstore, store::EntityKind::kEvent, q, ids, nullptr);
    ASSERT_EQ(ref.size(), got.size());
    for (size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(ref[i].id, got[i].id);
      EXPECT_EQ(ref[i].found, got[i].found);
      ExpectBitEqualScalar(got[i].score, ref[i].score,
                           std::string("candidate ") + std::to_string(i) +
                               " @" + SimdLevelName(level));
    }
  }
}

}  // namespace
}  // namespace evrec
