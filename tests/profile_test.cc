// Tests for evrec/obs/profile: the deterministic profiling mode (span-
// charged costs on an injected clock, synthetic stacks, injectable tick
// source) and its byte-identical export contract across runs and thread
// counts; the scoped allocation accountant (bytes charged to the
// innermost active span, including across ParallelFor shards); the
// per-request cost table with forced (incident) retention and bounded
// eviction; and a real-SIGPROF smoke test. Run under every sanitizer:
// tools/check.sh profile does.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "evrec/obs/metrics.h"
#include "evrec/obs/profile.h"
#include "evrec/obs/trace.h"
#include "evrec/util/clock.h"
#include "evrec/util/thread_pool.h"
#include "evrec/util/trace_context.h"

namespace evrec {
namespace obs {
namespace {

// Keeps an allocation observable so the (replaced) operator new cannot be
// elided even at high optimization levels.
void Escape(void* p) { asm volatile("" : : "g"(p) : "memory"); }

class ProfileTest : public ::testing::Test {
 public:
  void SetUp() override { Reset(); }
  void TearDown() override {
    Reset();
    SetClock(nullptr);
  }
  static void Reset() {
    Profiler::Global()->Stop();
    Profiler::Global()->Clear();
    Profiler::Global()->SetTickSource({});
    TraceLog::Global()->Clear();
    ResetTraceIdsForTest();
  }
};

// ---------- deterministic mode: span-charged CPU cost ----------

TEST_F(ProfileTest, NestedSpansChargeSelfTimeToTheirOwnStacks) {
  FakeClock clock;
  SetClock(&clock);
  ProfileConfig config;
  config.sample_hz = 100000;  // 10us period
  Profiler::Global()->StartDeterministic(config);
  {
    ScopedSpan outer("outer");
    clock.Advance(100);
    {
      ScopedSpan inner("inner");
      clock.Advance(50);
    }
  }
  Profiler::Global()->Stop();

  std::vector<ProfileStackEntry> stacks = Profiler::Global()->StackEntries();
  ASSERT_EQ(stacks.size(), 2u);
  // Sorted by stack string: "outer" < "outer;inner".
  EXPECT_EQ(stacks[0].stack, "outer");
  EXPECT_EQ(stacks[0].self_micros, 100);
  EXPECT_EQ(stacks[0].samples, 10u);
  EXPECT_EQ(stacks[1].stack, "outer;inner");
  EXPECT_EQ(stacks[1].self_micros, 50);
  EXPECT_EQ(stacks[1].samples, 5u);
  EXPECT_EQ(Profiler::Global()->total_samples(), 15u);
}

TEST_F(ProfileTest, InjectedTickSourceReplacesThePeriodDivision) {
  FakeClock clock;
  SetClock(&clock);
  ProfileConfig config;
  Profiler::Global()->StartDeterministic(config);
  Profiler::Global()->SetTickSource([](int64_t) -> uint64_t { return 7; });
  {
    ScopedSpan span("ticked");
    clock.Advance(3);
  }
  Profiler::Global()->Stop();
  std::vector<ProfileStackEntry> stacks = Profiler::Global()->StackEntries();
  ASSERT_EQ(stacks.size(), 1u);
  EXPECT_EQ(stacks[0].samples, 7u);
  EXPECT_EQ(stacks[0].self_micros, 3);
}

TEST_F(ProfileTest, ChargedSamplesShowUpInThreadCost) {
  FakeClock clock;
  SetClock(&clock);
  ProfileConfig config;
  config.sample_hz = 100000;
  Profiler::Global()->StartDeterministic(config);
  const ThreadCostSnapshot before = ThreadCost();
  {
    ScopedSpan span("work");
    clock.Advance(40);  // 4 samples at 10us period
  }
  const ThreadCostSnapshot after = ThreadCost();
  EXPECT_EQ(after.cpu_samples - before.cpu_samples, 4u);
}

// ---------- allocation accountant ----------

TEST_F(ProfileTest, BytesChargeToTheInnermostActiveSpan) {
  FakeClock clock;
  SetClock(&clock);
  ProfileConfig config;
  Profiler::Global()->StartDeterministic(config);
  {
    ScopedSpan outer("outer");
    auto* a = new char[1000];
    Escape(a);
    {
      ScopedSpan inner("inner");
      auto* b = new char[2000];
      Escape(b);
      delete[] b;
    }
    delete[] a;
  }
  Profiler::Global()->Stop();

  std::vector<ProfileStackEntry> stacks = Profiler::Global()->StackEntries();
  ASSERT_EQ(stacks.size(), 2u);
  EXPECT_EQ(stacks[0].stack, "outer");
  EXPECT_EQ(stacks[0].alloc_bytes, 1000u);
  EXPECT_EQ(stacks[0].alloc_count, 1u);
  EXPECT_EQ(stacks[1].stack, "outer;inner");
  EXPECT_EQ(stacks[1].alloc_bytes, 2000u);
  EXPECT_EQ(stacks[1].alloc_count, 1u);
  EXPECT_EQ(Profiler::Global()->total_alloc_bytes(), 3000u);
  EXPECT_EQ(Profiler::Global()->total_alloc_count(), 2u);
}

TEST_F(ProfileTest, ThreadCostTalliesEveryAllocationOnThisThread) {
  const ThreadCostSnapshot before = ThreadCost();
  auto* p = new char[4096];
  Escape(p);
  delete[] p;
  const ThreadCostSnapshot after = ThreadCost();
  EXPECT_EQ(after.alloc_bytes - before.alloc_bytes, 4096u);
  EXPECT_EQ(after.alloc_count - before.alloc_count, 1u);
}

TEST_F(ProfileTest, ScopedTallySuppressHidesInfrastructureAllocations) {
  const ThreadCostSnapshot before = ThreadCost();
  {
    ScopedTallySuppress suppress;
    auto* p = new char[512];
    Escape(p);
    delete[] p;
  }
  const ThreadCostSnapshot after = ThreadCost();
  EXPECT_EQ(after.alloc_bytes, before.alloc_bytes);
  EXPECT_EQ(after.alloc_count, before.alloc_count);
}

// Runs the same span-annotated sharded workload on a pool of the given
// size and returns both exports. Shard spans run on whichever thread the
// pool picks; the accountant must charge each shard's bytes to the shard
// frame regardless, so the exports cannot depend on the thread count.
struct Exports {
  std::string text;
  std::string folded;
};

Exports RunShardWorkload(int threads) {
  ProfileTest::Reset();
  FakeClock clock;
  SetClock(&clock);
  ProfileConfig config;
  Profiler::Global()->StartDeterministic(config);
  // Zero simulated time passes inside shards (a FakeClock must not be
  // advanced concurrently); one tick per span close keeps the folded
  // export non-empty and thread-count-independent.
  Profiler::Global()->SetTickSource([](int64_t) -> uint64_t { return 1; });
  {
    ThreadPool pool(threads);
    ScopedSpan root("root");
    pool.ParallelFor(8, [&](int s) {
      ScopedSpan shard("shard");
      auto* p = new char[64 * static_cast<size_t>(s + 1)];
      Escape(p);
      delete[] p;
    });
  }
  Profiler::Global()->Stop();
  Exports out;
  std::ostringstream text, folded;
  Profiler::Global()->WriteText(text);
  Profiler::Global()->WriteFolded(folded);
  out.text = text.str();
  out.folded = folded.str();
  SetClock(nullptr);
  return out;
}

TEST_F(ProfileTest, ShardedWorkloadExportsAreIdenticalAcrossThreadCounts) {
  Exports t1 = RunShardWorkload(1);
  Exports t4 = RunShardWorkload(4);
  EXPECT_EQ(t1.text, t4.text);
  EXPECT_EQ(t1.folded, t4.folded);
  EXPECT_FALSE(t1.folded.empty());
  // All 8 shard windows land on the shard frame: 64 * (1+2+...+8).
  EXPECT_NE(t1.text.find("root;shard"), std::string::npos);
  auto parsed = ParseProfileText(t1.text);
  ASSERT_TRUE(parsed.ok());
  for (const ProfileStackEntry& e : parsed->stacks) {
    if (e.stack == "root;shard") {
      EXPECT_EQ(e.alloc_bytes, 64u * 36u);
      EXPECT_EQ(e.alloc_count, 8u);
    }
  }
}

TEST_F(ProfileTest, ExportsAreIdenticalAcrossRuns) {
  Exports first = RunShardWorkload(2);
  Exports second = RunShardWorkload(2);
  EXPECT_EQ(first.text, second.text);
  EXPECT_EQ(first.folded, second.folded);
}

// ---------- text export round trip ----------

TEST_F(ProfileTest, SyntheticStacksRoundTripThroughTheTextFormat) {
  ProfileConfig config;
  Profiler::Global()->StartDeterministic(config);
  Profiler::Global()->RecordSynthetic({"main", "train", "epoch"},
                                      /*samples=*/5, /*self_micros=*/50,
                                      /*alloc_bytes=*/1024,
                                      /*alloc_count=*/3);
  Profiler::Global()->NoteRequest(0xabcdef, /*cpu_samples=*/2,
                                  /*alloc_bytes=*/256, /*forced=*/true);
  Profiler::Global()->Stop();

  std::ostringstream os;
  Profiler::Global()->WriteText(os);
  auto parsed = ParseProfileText(os.str());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->total_samples, 5u);
  EXPECT_EQ(parsed->total_alloc_bytes, 1024u);
  EXPECT_EQ(parsed->total_alloc_count, 3u);
  ASSERT_EQ(parsed->stacks.size(), 1u);
  EXPECT_EQ(parsed->stacks[0].stack, "main;train;epoch");
  EXPECT_EQ(parsed->stacks[0].samples, 5u);
  EXPECT_EQ(parsed->stacks[0].self_micros, 50);
  EXPECT_EQ(parsed->stacks[0].alloc_bytes, 1024u);
  EXPECT_EQ(parsed->stacks[0].alloc_count, 3u);
  ASSERT_EQ(parsed->requests.size(), 1u);
  EXPECT_EQ(parsed->requests[0].trace_id, 0xabcdefu);
  EXPECT_EQ(parsed->requests[0].cpu_samples, 2u);
  EXPECT_EQ(parsed->requests[0].alloc_bytes, 256u);
  EXPECT_TRUE(parsed->requests[0].forced);

  std::ostringstream report;
  WriteProfileReport(*parsed, ProfileReportOptions(), report);
  EXPECT_NE(report.str().find("epoch"), std::string::npos);
  EXPECT_NE(report.str().find("0000000000abcdef"), std::string::npos);

  std::ostringstream folded;
  WriteFoldedFromParsed(*parsed, folded);
  EXPECT_EQ(folded.str(), "main;train;epoch 5\n");
}

TEST_F(ProfileTest, MalformedRecordsFailParsing) {
  EXPECT_FALSE(ParseProfileText("bogus line\n").ok());
  EXPECT_FALSE(ParseProfileText("stack not-a-number x\n").ok());
  // Unknown header comments are ignored (forward compatibility).
  auto parsed = ParseProfileText("# evrec profile v1\n# future_field 9\n");
  EXPECT_TRUE(parsed.ok());
}

// ---------- per-request cost table ----------

TEST_F(ProfileTest, RequestTableEvictsOldestUnforcedFirst) {
  ProfileConfig config;
  config.max_request_entries = 4;
  Profiler::Global()->StartDeterministic(config);
  Profiler::Global()->NoteRequest(1, 1, 0, /*forced=*/false);
  Profiler::Global()->NoteRequest(2, 1, 0, /*forced=*/true);
  Profiler::Global()->NoteRequest(3, 1, 0, /*forced=*/false);
  Profiler::Global()->NoteRequest(4, 1, 0, /*forced=*/false);
  // Table full; the oldest unforced entry (trace 1) must go, the forced
  // incident entry (trace 2) must survive.
  Profiler::Global()->NoteRequest(5, 1, 0, /*forced=*/false);
  Profiler::Global()->Stop();

  std::vector<ProfileRequestEntry> requests =
      Profiler::Global()->RequestEntries();
  ASSERT_EQ(requests.size(), 4u);
  EXPECT_EQ(requests[0].trace_id, 2u);
  EXPECT_TRUE(requests[0].forced);
  EXPECT_EQ(requests[1].trace_id, 3u);
  EXPECT_EQ(requests[2].trace_id, 4u);
  EXPECT_EQ(requests[3].trace_id, 5u);
  EXPECT_EQ(Profiler::Global()->forced_requests(), 1u);
}

TEST_F(ProfileTest, IncidentMarkThenRequestMergesIntoOneForcedEntry) {
  ProfileConfig config;
  Profiler::Global()->Arm(config);
  Profiler::Global()->EnsureIncidentCollection();
  EXPECT_TRUE(Profiler::Global()->collecting());
  EXPECT_EQ(Profiler::Global()->incident_activations(), 1u);
  // The SLO engine marks the trace when the alert fires (mid-request);
  // the service files the measured cost as the root span closes.
  Profiler::Global()->MarkIncidentTrace(77);
  Profiler::Global()->NoteRequest(77, 9, 512, /*forced=*/false);
  Profiler::Global()->Stop();

  std::vector<ProfileRequestEntry> requests =
      Profiler::Global()->RequestEntries();
  ASSERT_EQ(requests.size(), 1u);
  EXPECT_EQ(requests[0].trace_id, 77u);
  EXPECT_EQ(requests[0].cpu_samples, 9u);
  EXPECT_EQ(requests[0].alloc_bytes, 512u);
  EXPECT_TRUE(requests[0].forced);
}

TEST_F(ProfileTest, DeterministicCollectionExpiresOnTheInjectedClock) {
  FakeClock clock(1000);
  SetClock(&clock);
  ProfileConfig config;
  config.max_duration_micros = 500;
  Profiler::Global()->StartDeterministic(config);
  {
    ScopedSpan span("early");
    clock.Advance(100);
  }
  EXPECT_TRUE(Profiler::Global()->collecting());
  clock.Advance(1000);  // past the configured duration
  {
    ScopedSpan span("late");
    clock.Advance(10);
  }
  EXPECT_FALSE(Profiler::Global()->collecting());
  std::vector<ProfileStackEntry> stacks = Profiler::Global()->StackEntries();
  ASSERT_EQ(stacks.size(), 1u);
  EXPECT_EQ(stacks[0].stack, "early");
}

TEST_F(ProfileTest, WriteTextToUnwritablePathFails) {
  Profiler::Global()->StartDeterministic(ProfileConfig());
  Profiler::Global()->Stop();
  Status status =
      Profiler::Global()->WriteText("/nonexistent-dir/profile.txt");
  EXPECT_FALSE(status.ok());
}

// ---------- real SIGPROF mode ----------

TEST_F(ProfileTest, RealModeCollectsNonzeroSamplesFromABusyLoop) {
  ProfileConfig config;
  config.sample_hz = 1000;
  ASSERT_TRUE(Profiler::Global()->Start(config).ok());
  // Burn CPU until the timer has delivered at least one sample (SIGPROF
  // fires on consumed CPU time, so this terminates; bound it anyway).
  const uint64_t samples_before = ThreadCost().cpu_samples;
  volatile double sink = 0.0;
  for (int spin = 0;
       spin < 20000 && ThreadCost().cpu_samples == samples_before;
       ++spin) {
    for (int i = 0; i < 10000; ++i) {
      sink = sink + static_cast<double>(i) * 1e-9;
    }
  }
  Profiler::Global()->Stop();
  EXPECT_GT(Profiler::Global()->total_samples(), 0u);
  std::vector<ProfileStackEntry> stacks = Profiler::Global()->StackEntries();
  ASSERT_FALSE(stacks.empty());
  // Drained stacks symbolize to something (symbol names or hex PCs).
  for (const ProfileStackEntry& e : stacks) EXPECT_FALSE(e.stack.empty());
}

TEST_F(ProfileTest, StopWithoutStartIsANoOp) {
  Profiler::Global()->Stop();
  EXPECT_FALSE(Profiler::Global()->collecting());
  EXPECT_EQ(Profiler::Global()->total_samples(), 0u);
}

}  // namespace
}  // namespace obs
}  // namespace evrec
