// Tests for evrec/model: extraction banks, tower head (residual bypass),
// towers, the joint model (cosine + Eq. 1 loss) with full-network gradient
// checks, the trainer, Siamese pre-training, and Figure-7 attribution.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "evrec/model/attribution.h"
#include "evrec/model/joint_model.h"
#include "evrec/model/siamese.h"
#include "evrec/model/trainer.h"
#include "evrec/nn/grad_check.h"
#include "evrec/util/logging.h"
#include "evrec/util/math_util.h"

namespace evrec {
namespace model {
namespace {

text::EncodedText MakeDoc(std::vector<int> ids) {
  text::EncodedText e;
  e.word_index.resize(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    e.word_index[i] = static_cast<int>(i);
  }
  e.token_ids = std::move(ids);
  return e;
}

JointModelConfig TinyConfig() {
  JointModelConfig c;
  c.embedding_dim = 6;
  c.module_out_dim = 6;
  c.hidden_dim = 12;
  c.rep_dim = 8;
  c.text_windows = {1, 2};
  c.categorical_windows = {1};
  c.learning_rate = 0.1f;
  c.batch_size = 4;
  c.max_epochs = 40;
  c.early_stop_patience = 40;
  c.validation_fraction = 0.15;
  c.seed = 11;
  return c;
}

// ---------- Eq. 1 loss ----------

TEST(Eq1LossTest, PositivePair) {
  LossGrad lg = Eq1Loss(0.3, 1.0f, 0.0f);
  EXPECT_NEAR(lg.loss, 0.7, 1e-12);
  EXPECT_NEAR(lg.dloss_dsim, -1.0, 1e-12);
}

TEST(Eq1LossTest, NegativePairAboveMargin) {
  LossGrad lg = Eq1Loss(0.4, 0.0f, 0.0f);
  EXPECT_NEAR(lg.loss, 0.4, 1e-12);
  EXPECT_NEAR(lg.dloss_dsim, 1.0, 1e-12);
}

TEST(Eq1LossTest, NegativePairBelowMarginHasZeroLoss) {
  LossGrad lg = Eq1Loss(-0.2, 0.0f, 0.0f);
  EXPECT_NEAR(lg.loss, 0.0, 1e-12);
  EXPECT_NEAR(lg.dloss_dsim, 0.0, 1e-12);
}

TEST(Eq1LossTest, ThetaRShiftsTheMargin) {
  // With theta_r = -0.5 a negative pair at sim=-0.2 still incurs loss.
  LossGrad lg = Eq1Loss(-0.2, 0.0f, -0.5f);
  EXPECT_NEAR(lg.loss, 0.3, 1e-12);
  EXPECT_NEAR(lg.dloss_dsim, 1.0, 1e-12);
}

// ---------- cosine backward ----------

TEST(CosineBackwardTest, MatchesNumericGradient) {
  Rng rng(21);
  const int n = 6;
  std::vector<float> a(n), b(n);
  for (int i = 0; i < n; ++i) {
    a[static_cast<size_t>(i)] = static_cast<float>(rng.Uniform(-1, 1));
    b[static_cast<size_t>(i)] = static_cast<float>(rng.Uniform(-1, 1));
  }
  auto cosine = [&]() { return CosineSimilarity(a.data(), b.data(), n); };

  double sim = cosine();
  std::vector<float> da(n, 0.0f), db(n, 0.0f);
  CosineBackward(a, b, sim, 1.0, &da, &db);

  for (int i = 0; i < n; ++i) {
    double num_a = nn::NumericGradient(cosine, &a[static_cast<size_t>(i)]);
    EXPECT_LT(nn::RelativeError(num_a, da[static_cast<size_t>(i)]), 2e-3);
    double num_b = nn::NumericGradient(cosine, &b[static_cast<size_t>(i)]);
    EXPECT_LT(nn::RelativeError(num_b, db[static_cast<size_t>(i)]), 2e-3);
  }
}

TEST(CosineBackwardTest, ZeroVectorIsNoOp) {
  std::vector<float> a = {0.0f, 0.0f};
  std::vector<float> b = {1.0f, 0.0f};
  std::vector<float> da(2, 0.0f), db(2, 0.0f);
  CosineBackward(a, b, 0.0, 1.0, &da, &db);
  EXPECT_FLOAT_EQ(da[0], 0.0f);
  EXPECT_FLOAT_EQ(db[0], 0.0f);
}

// ---------- tower head ----------

class TowerHeadGradTest : public ::testing::TestWithParam<bool> {};

TEST_P(TowerHeadGradTest, GradCheck) {
  const bool bypass = GetParam();
  Rng rng(31);
  TowerHead head(5, 7, 4, bypass);
  head.XavierInit(rng);
  std::vector<float> x(5);
  for (auto& v : x) v = static_cast<float>(rng.Uniform(-1, 1));
  std::vector<float> w = {0.4f, -0.9f, 0.2f, 0.7f};

  auto loss = [&]() {
    TowerHead::Context c;
    head.Forward(x.data(), &c);
    double l = 0.0;
    for (int i = 0; i < 4; ++i) l += c.rep[static_cast<size_t>(i)] * w[static_cast<size_t>(i)];
    return l;
  };

  TowerHead::Context ctx;
  head.Forward(x.data(), &ctx);
  head.ZeroGrad();
  std::vector<float> dx(5, 0.0f);
  head.Backward(w.data(), ctx, dx.data());

  // Input gradient (flows through hidden layer and, if enabled, bypass).
  for (int i = 0; i < 5; ++i) {
    double num = nn::NumericGradient(loss, &x[static_cast<size_t>(i)]);
    EXPECT_LT(nn::RelativeError(num, dx[static_cast<size_t>(i)]), 5e-3)
        << "bypass=" << bypass << " x[" << i << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(BypassOnOff, TowerHeadGradTest,
                         ::testing::Bool());

TEST(TowerHeadTest, BypassChangesOutput) {
  Rng rng(32);
  TowerHead with(4, 6, 3, true);
  with.XavierInit(rng);
  Rng rng2(32);
  TowerHead without(4, 6, 3, false);
  without.XavierInit(rng2);  // same hidden/projection draw order
  std::vector<float> x = {0.5f, -0.5f, 1.0f, 0.25f};
  TowerHead::Context c1, c2;
  with.Forward(x.data(), &c1);
  without.Forward(x.data(), &c2);
  // With a random nonzero bypass matrix the outputs must differ.
  bool differ = false;
  for (int i = 0; i < 3; ++i) {
    if (std::fabs(c1.rep[static_cast<size_t>(i)] -
                  c2.rep[static_cast<size_t>(i)]) > 1e-6) {
      differ = true;
    }
  }
  EXPECT_TRUE(differ);
}

// ---------- joint model ----------

TEST(JointModelTest, DimensionsFollowConfig) {
  JointModelConfig cfg = TinyConfig();
  JointModel m(cfg, 16, 4, 16);
  EXPECT_EQ(m.user_tower().num_banks(), 2);
  EXPECT_EQ(m.event_tower().num_banks(), 1);
  EXPECT_EQ(m.user_tower().concat_dim(),
            cfg.module_out_dim * 3);  // 2 text windows + 1 categorical
  EXPECT_EQ(m.event_tower().concat_dim(), cfg.module_out_dim * 2);
  EXPECT_EQ(m.user_tower().rep_dim(), cfg.rep_dim);
  EXPECT_EQ(m.event_tower().rep_dim(), cfg.rep_dim);
}

TEST(JointModelTest, SimilarityIsInCosineRange) {
  JointModelConfig cfg = TinyConfig();
  JointModel m(cfg, 16, 4, 16);
  Rng rng(41);
  m.RandomInit(rng);
  double s = m.Score({MakeDoc({1, 2, 3}), MakeDoc({0, 1})},
                     {MakeDoc({4, 5, 6, 7})});
  EXPECT_GE(s, -1.0 - 1e-9);
  EXPECT_LE(s, 1.0 + 1e-9);
}

TEST(JointModelTest, FullNetworkGradCheck) {
  JointModelConfig cfg = TinyConfig();
  JointModel m(cfg, 16, 4, 16);
  Rng rng(43);
  m.RandomInit(rng);

  std::vector<text::EncodedText> user = {MakeDoc({1, 5, 9, 2}),
                                         MakeDoc({0, 2})};
  std::vector<text::EncodedText> event = {MakeDoc({3, 8, 11})};
  const float label = 1.0f;

  auto loss = [&]() {
    JointModel::PairContext c;
    double sim = m.Similarity(user, event, &c);
    return Eq1Loss(sim, label, cfg.theta_r).loss;
  };

  JointModel::PairContext ctx;
  m.Similarity(user, event, &ctx);
  m.ZeroGrad();
  m.AccumulatePairGradient(ctx, label);

  // Sample parameters from every component of both towers.
  auto& user_tower = m.mutable_user_tower();
  auto& event_tower = m.mutable_event_tower();

  // User text embedding row 5.
  {
    auto table = user_tower.mutable_bank(0).shared_table();
    for (int d = 0; d < cfg.embedding_dim; d += 2) {
      double num = nn::NumericGradient(loss, &table->MutableVector(5)[d]);
      EXPECT_LT(nn::RelativeError(num, table->GradRow(5)[d]), 1e-2)
          << "user emb d=" << d;
    }
  }
  // Event conv weight of the window-2 module.
  {
    auto& conv = event_tower.mutable_bank(0).mutable_module(1).mutable_conv();
    for (int r = 0; r < 3; ++r) {
      double num = nn::NumericGradient(loss, &conv.mutable_weight().At(r, 1));
      EXPECT_LT(nn::RelativeError(num, conv.weight_grad().At(r, 1)), 1e-2)
          << "event conv r=" << r;
    }
  }
  // Categorical embedding row 0.
  {
    auto table = user_tower.mutable_bank(1).shared_table();
    double num = nn::NumericGradient(loss, &table->MutableVector(0)[0]);
    EXPECT_LT(nn::RelativeError(num, table->GradRow(0)[0]), 1e-2);
  }
}

TEST(JointModelTest, NegativeBelowMarginProducesNoGradient) {
  JointModelConfig cfg = TinyConfig();
  JointModel m(cfg, 16, 4, 16);
  Rng rng(44);
  m.RandomInit(rng);
  std::vector<text::EncodedText> user = {MakeDoc({1}), MakeDoc({0})};
  std::vector<text::EncodedText> event = {MakeDoc({2})};
  JointModel::PairContext ctx;
  double sim = m.Similarity(user, event, &ctx);
  if (sim < 0.0) {  // only meaningful when the random sim is negative
    double loss = m.AccumulatePairGradient(ctx, 0.0f);
    EXPECT_EQ(loss, 0.0);
  }
}

TEST(JointModelTest, SerializeRoundTripPreservesSimilarity) {
  std::string path = testing::TempDir() + "/evrec_joint_test.bin";
  JointModelConfig cfg = TinyConfig();
  JointModel m(cfg, 16, 4, 16);
  Rng rng(45);
  m.RandomInit(rng);
  std::vector<text::EncodedText> user = {MakeDoc({1, 2, 3}), MakeDoc({1})};
  std::vector<text::EncodedText> event = {MakeDoc({4, 5})};
  double before = m.Score(user, event);
  {
    BinaryWriter w(path);
    m.Serialize(w);
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(path);
  JointModel loaded = JointModel::Deserialize(r);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(loaded.Score(user, event), before, 1e-6);
  EXPECT_EQ(loaded.config().rep_dim, cfg.rep_dim);
  std::remove(path.c_str());
}

// ---------- trainer on a separable toy problem ----------

// Two latent topics; topic-A users match topic-A events. User text ids
// 0..7 = topic A, 8..15 = topic B (likewise event ids). The model must
// learn to co-embed matching topics.
RepDataset MakeToyDataset() {
  RepDataset data;
  Rng rng(51);
  const int users_per_topic = 8, events_per_topic = 8;
  for (int topic = 0; topic < 2; ++topic) {
    for (int u = 0; u < users_per_topic; ++u) {
      std::vector<int> ids;
      for (int i = 0; i < 5; ++i) ids.push_back(topic * 8 + rng.UniformInt(0, 7));
      data.user_inputs.push_back(
          {MakeDoc(ids), MakeDoc({topic * 2 + rng.UniformInt(0, 1)})});
    }
    for (int e = 0; e < events_per_topic; ++e) {
      std::vector<int> ids;
      for (int i = 0; i < 6; ++i) ids.push_back(topic * 8 + rng.UniformInt(0, 7));
      data.event_inputs.push_back({MakeDoc(ids)});
    }
  }
  // Labels: same topic = positive, cross topic = negative.
  for (int u = 0; u < 16; ++u) {
    for (int e = 0; e < 16; ++e) {
      int ut = u / 8, et = e / 8;
      data.pairs.push_back({u, e, ut == et ? 1.0f : 0.0f});
    }
  }
  return data;
}

TEST(RepTrainerTest, LearnsToSeparateTopics) {
  SetLogLevel(LogLevel::kWarn);
  JointModelConfig cfg = TinyConfig();
  JointModel m(cfg, 16, 4, 16);
  Rng rng(52);
  m.RandomInit(rng);
  RepDataset data = MakeToyDataset();

  RepTrainer trainer(&m);
  double before = trainer.EvaluateLoss(data, data.pairs);
  Rng train_rng(53);
  TrainStats stats = trainer.Train(data, train_rng);
  double after = trainer.EvaluateLoss(data, data.pairs);
  EXPECT_LT(after, before * 0.5) << "training failed to reduce loss";
  EXPECT_GT(stats.epochs_run, 0);
  ASSERT_FALSE(stats.train_loss.empty());

  // Positive pairs now more similar than negative pairs.
  double pos_sim = 0.0, neg_sim = 0.0;
  int pos_n = 0, neg_n = 0;
  for (const RepPair& p : data.pairs) {
    double s = m.Score(data.user_inputs[p.user], data.event_inputs[p.event]);
    if (p.label > 0.5f) {
      pos_sim += s;
      ++pos_n;
    } else {
      neg_sim += s;
      ++neg_n;
    }
  }
  pos_sim /= pos_n;
  neg_sim /= neg_n;
  EXPECT_GT(pos_sim, neg_sim + 0.3);
  SetLogLevel(LogLevel::kInfo);
}

TEST(RepTrainerTest, EarlyStoppingBoundsEpochs) {
  SetLogLevel(LogLevel::kWarn);
  JointModelConfig cfg = TinyConfig();
  cfg.max_epochs = 50;
  cfg.early_stop_patience = 2;
  cfg.early_stop_tolerance = 1e9;  // nothing counts as an improvement
  JointModel m(cfg, 16, 4, 16);
  Rng rng(54);
  m.RandomInit(rng);
  RepDataset data = MakeToyDataset();
  RepTrainer trainer(&m);
  Rng train_rng(55);
  TrainStats stats = trainer.Train(data, train_rng);
  EXPECT_TRUE(stats.early_stopped);
  EXPECT_LE(stats.epochs_run, 3);
  SetLogLevel(LogLevel::kInfo);
}

// ---------- Siamese pre-training ----------

TEST(SiameseTest, TitleBodyPairsBecomeSimilar) {
  SetLogLevel(LogLevel::kWarn);
  JointModelConfig cfg = TinyConfig();
  Tower tower({16}, {cfg.text_windows}, cfg.embedding_dim,
              cfg.module_out_dim, cfg.hidden_dim, cfg.rep_dim, cfg.pool,
              cfg.residual_bypass);
  Rng rng(61);
  tower.RandomInit(rng);

  // Titles/bodies drawn from per-event topic token ranges.
  std::vector<text::EncodedText> titles, bodies;
  Rng gen(62);
  for (int e = 0; e < 24; ++e) {
    int topic = e % 2;
    std::vector<int> t, b;
    for (int i = 0; i < 3; ++i) t.push_back(topic * 8 + gen.UniformInt(0, 7));
    for (int i = 0; i < 6; ++i) b.push_back(topic * 8 + gen.UniformInt(0, 7));
    titles.push_back(MakeDoc(t));
    bodies.push_back(MakeDoc(b));
  }

  SiameseConfig scfg;
  scfg.max_epochs = 40;
  Rng train_rng(63);
  SiameseStats stats =
      SiamesePretrain(&tower, titles, bodies, scfg, train_rng);
  ASSERT_EQ(stats.epochs_run, 40);
  EXPECT_LT(stats.train_loss.back(), stats.train_loss.front());

  // Same-topic title/body pairs should now be closer than cross-topic.
  auto rep = [&](const text::EncodedText& doc) {
    return tower.Represent({doc});
  };
  double same = 0.0, cross = 0.0;
  int n_same = 0, n_cross = 0;
  for (int i = 0; i < 24; ++i) {
    for (int j = 0; j < 24; ++j) {
      auto a = rep(titles[static_cast<size_t>(i)]);
      auto b = rep(bodies[static_cast<size_t>(j)]);
      double s = CosineSimilarity(a.data(), b.data(),
                                  static_cast<int>(a.size()));
      if (i % 2 == j % 2) {
        same += s;
        ++n_same;
      } else {
        cross += s;
        ++n_cross;
      }
    }
  }
  EXPECT_GT(same / n_same, cross / n_cross + 0.2);
  SetLogLevel(LogLevel::kInfo);
}

// ---------- feature normalization in towers ----------

TEST(TowerNormalizerTest, CalibrationChangesForwardAndStaysConsistent) {
  JointModelConfig cfg = TinyConfig();
  Tower tower({16}, {cfg.text_windows}, cfg.embedding_dim,
              cfg.module_out_dim, cfg.hidden_dim, cfg.rep_dim, cfg.pool,
              cfg.residual_bypass);
  Rng rng(81);
  tower.RandomInit(rng, 1.0f);

  std::vector<std::vector<text::EncodedText>> docs;
  Rng gen(82);
  for (int d = 0; d < 50; ++d) {
    std::vector<int> ids;
    for (int i = 0; i < 8; ++i) ids.push_back(gen.UniformInt(0, 15));
    docs.push_back({MakeDoc(ids)});
  }
  auto before = tower.Represent(docs[0]);
  tower.CalibrateNormalizer(docs);
  EXPECT_TRUE(tower.normalizer().calibrated());
  auto after = tower.Represent(docs[0]);
  bool changed = false;
  for (size_t i = 0; i < before.size(); ++i) {
    if (std::fabs(before[i] - after[i]) > 1e-6) changed = true;
  }
  EXPECT_TRUE(changed);
  // Deterministic: re-running Represent gives the same output.
  auto again = tower.Represent(docs[0]);
  for (size_t i = 0; i < after.size(); ++i) {
    EXPECT_FLOAT_EQ(after[i], again[i]);
  }
}

TEST(TowerNormalizerTest, CalibrationSpreadsPairwiseCosines) {
  // The collapse-prevention property: after calibration, representations
  // of distinct documents are far less mutually parallel.
  JointModelConfig cfg = TinyConfig();
  Tower raw({16}, {cfg.text_windows}, cfg.embedding_dim, cfg.module_out_dim,
            cfg.hidden_dim, cfg.rep_dim, cfg.pool, cfg.residual_bypass);
  Rng rng(83);
  raw.RandomInit(rng, 0.1f);

  std::vector<std::vector<text::EncodedText>> docs;
  Rng gen(84);
  for (int d = 0; d < 40; ++d) {
    std::vector<int> ids;
    for (int i = 0; i < 40; ++i) ids.push_back(gen.UniformInt(0, 15));
    docs.push_back({MakeDoc(ids)});
  }
  auto mean_abs_cos = [&](Tower& t) {
    std::vector<std::vector<float>> reps;
    for (const auto& d : docs) reps.push_back(t.Represent(d));
    double total = 0.0;
    int n = 0;
    for (size_t a = 0; a < reps.size(); ++a) {
      for (size_t b = a + 1; b < reps.size(); ++b) {
        total += std::fabs(CosineSimilarity(
            reps[a].data(), reps[b].data(), static_cast<int>(reps[a].size())));
        ++n;
      }
    }
    return total / n;
  };
  double before = mean_abs_cos(raw);
  raw.CalibrateNormalizer(docs);
  double after = mean_abs_cos(raw);
  EXPECT_LT(after, before);
}

TEST(TowerNormalizerTest, GradCheckThroughNormalizer) {
  JointModelConfig cfg = TinyConfig();
  JointModel m(cfg, 16, 4, 16);
  Rng rng(85);
  m.RandomInit(rng);

  // Calibrate on a few documents so the norm is non-trivial.
  RepDataset data = MakeToyDataset();
  m.CalibrateNormalizers(data);

  std::vector<text::EncodedText> user = {MakeDoc({1, 5, 9, 2}),
                                         MakeDoc({0, 2})};
  std::vector<text::EncodedText> event = {MakeDoc({3, 8, 11})};
  auto loss = [&]() {
    JointModel::PairContext c;
    double sim = m.Similarity(user, event, &c);
    return Eq1Loss(sim, 1.0f, cfg.theta_r).loss;
  };
  JointModel::PairContext ctx;
  m.Similarity(user, event, &ctx);
  m.ZeroGrad();
  m.AccumulatePairGradient(ctx, 1.0f);
  auto table = m.mutable_user_tower().mutable_bank(0).shared_table();
  for (int d = 0; d < cfg.embedding_dim; d += 2) {
    double num = nn::NumericGradient(loss, &table->MutableVector(5)[d]);
    EXPECT_LT(nn::RelativeError(num, table->GradRow(5)[d]), 1e-2)
        << "normalized-path emb grad d=" << d;
  }
}

// ---------- attribution ----------

TEST(AttributionTest, CreditsComeFromInputWords) {
  Rng rng(71);
  ExtractionBank bank(16, 6, {1, 3}, 6, nn::PoolType::kLogSumExp);
  bank.RandomInit(rng);
  // 4 words x 3 tokens each.
  text::EncodedText doc;
  for (int w = 0; w < 4; ++w) {
    for (int t = 0; t < 3; ++t) {
      doc.token_ids.push_back(w * 4 + t);
      doc.word_index.push_back(w);
    }
  }
  auto attributions = AttributeTopWords(bank, doc);
  ASSERT_EQ(attributions.size(), 2u);
  EXPECT_EQ(attributions[0].window_size, 1);
  EXPECT_EQ(attributions[1].window_size, 3);
  for (const auto& attr : attributions) {
    ASSERT_FALSE(attr.ranked_words.empty());
    double total = 0.0;
    for (const auto& wc : attr.ranked_words) {
      EXPECT_GE(wc.word_index, 0);
      EXPECT_LT(wc.word_index, 4);
      EXPECT_GT(wc.credit, 0.0);
      total += wc.credit;
    }
    // Each of the 6 output dims distributes exactly 1 unit of credit.
    EXPECT_NEAR(total, 6.0, 1e-9);
    // Ranked descending.
    for (size_t i = 1; i < attr.ranked_words.size(); ++i) {
      EXPECT_GE(attr.ranked_words[i - 1].credit, attr.ranked_words[i].credit);
    }
  }
}

TEST(AttributionTest, EmptyDocYieldsEmptyRanking) {
  Rng rng(72);
  ExtractionBank bank(16, 4, {1}, 4, nn::PoolType::kLogSumExp);
  bank.RandomInit(rng);
  auto attributions = AttributeTopWords(bank, text::EncodedText{});
  ASSERT_EQ(attributions.size(), 1u);
  EXPECT_TRUE(attributions[0].ranked_words.empty());
}

TEST(AttributionTest, TopWordStringsMapsIndices) {
  std::vector<ModuleAttribution> attrs(1);
  attrs[0].window_size = 1;
  attrs[0].ranked_words = {{2, 3.0}, {0, 1.0}};
  auto tops = TopWordStrings(attrs, {"alpha", "beta", "gamma"}, 5);
  ASSERT_EQ(tops.size(), 1u);
  ASSERT_EQ(tops[0].size(), 2u);
  EXPECT_EQ(tops[0][0], "gamma");
  EXPECT_EQ(tops[0][1], "alpha");
}

}  // namespace
}  // namespace model
}  // namespace evrec
