// Tests for evrec/util: Status/StatusOr, Rng distributions and
// determinism, string helpers, numeric helpers, binary/CSV IO, and the
// thread-safe logger (record atomicity under a stampede, rate limiting,
// timestamp format).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <regex>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "evrec/util/binary_io.h"
#include "evrec/util/crc32.h"
#include "evrec/util/csv_writer.h"
#include "evrec/util/json.h"
#include "evrec/util/logging.h"
#include "evrec/util/math_util.h"
#include "evrec/util/rng.h"
#include "evrec/util/status.h"
#include "evrec/util/string_util.h"
#include "evrec/util/trace_context.h"

namespace evrec {
namespace {

// ---------- Status ----------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dim");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dim");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
}

TEST(StatusTest, ServingCodeFactories) {
  Status d = Status::DeadlineExceeded("budget spent");
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(d.ToString(), "DeadlineExceeded: budget spent");
  Status u = Status::Unavailable("shard down");
  EXPECT_EQ(u.code(), StatusCode::kUnavailable);
  EXPECT_EQ(u.ToString(), "Unavailable: shard down");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("payload"));
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "payload");
}

TEST(StatusOrTest, ValueOrReturnsValueWhenOk) {
  StatusOr<int> v(42);
  EXPECT_EQ(v.value_or(-1), 42);
  StatusOr<std::string> s(std::string("have"));
  EXPECT_EQ(s.value_or("fallback"), "have");
}

TEST(StatusOrTest, ValueOrReturnsDefaultOnError) {
  StatusOr<int> v(Status::Unavailable("down"));
  EXPECT_EQ(v.value_or(-1), -1);
  StatusOr<std::vector<float>> vec(Status::NotFound("miss"));
  EXPECT_EQ(std::move(vec).value_or({9.0f}), std::vector<float>{9.0f});
}

TEST(StatusOrTest, ValueOrMovesOutOfRvalue) {
  StatusOr<std::string> v(std::string("payload"));
  std::string s = std::move(v).value_or("unused");
  EXPECT_EQ(s, "payload");
}

TEST(StatusOrTest, StatusMovesOutOfRvalue) {
  StatusOr<int> v(Status::DeadlineExceeded("late"));
  Status s = std::move(v).status();
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(s.message(), "late");
}

// ---------- Rng ----------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123, 7), b(123, 7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU32(), b.NextU32());
  }
}

TEST(RngTest, DifferentStreamsDiffer) {
  Rng a(123, 7), b(123, 8);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformU32RespectsBound) {
  Rng rng(1);
  for (uint32_t bound : {1u, 2u, 7u, 100u, 1000003u}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformU32(bound), bound);
    }
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(2);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    int v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(4);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, GammaMeanMatchesShape) {
  Rng rng(5);
  for (double shape : {0.3, 1.0, 4.5}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += rng.Gamma(shape);
    EXPECT_NEAR(sum / n, shape, shape * 0.08) << "shape=" << shape;
  }
}

TEST(RngTest, DirichletSumsToOne) {
  Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    auto v = rng.Dirichlet(0.3, 8);
    ASSERT_EQ(v.size(), 8u);
    double sum = 0.0;
    for (double x : v) {
      EXPECT_GE(x, 0.0);
      sum += x;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(7);
  std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(8);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<size_t>(i)] = i;
  auto copy = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(RngTest, ZipfFavorsLowRanks) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.Zipf(10, 1.2)];
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[4], counts[9]);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(10);
  Rng child = parent.Fork(1);
  Rng child2 = parent.Fork(1);
  // Sequential forks from an advancing parent differ.
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (child.NextU32() == child2.NextU32()) ++same;
  }
  EXPECT_LT(same, 3);
}

// ---------- string_util ----------

TEST(StringUtilTest, SplitAndTrimDropsEmpties) {
  auto parts = SplitAndTrim("a,,b, c", ", ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, SplitEmptyInput) {
  EXPECT_TRUE(SplitAndTrim("", ",").empty());
  EXPECT_TRUE(SplitAndTrim(",,,", ",").empty());
}

TEST(StringUtilTest, AsciiToLower) {
  EXPECT_EQ(AsciiToLower("AbC-12"), "abc-12");
}

TEST(StringUtilTest, IsAsciiAlnum) {
  EXPECT_TRUE(IsAsciiAlnum("abc123"));
  EXPECT_FALSE(IsAsciiAlnum("ab c"));
  EXPECT_FALSE(IsAsciiAlnum("a-b"));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("x=%d y=%.2f", 3, 1.5), "x=3 y=1.50");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("prefix_rest", "prefix"));
  EXPECT_FALSE(StartsWith("pre", "prefix"));
  EXPECT_TRUE(EndsWith("file.bin", ".bin"));
  EXPECT_FALSE(EndsWith("bin", ".bin"));
}

// ---------- math_util ----------

TEST(MathUtilTest, LogSumExpMatchesDirect) {
  std::vector<double> xs = {0.1, -2.0, 3.0, 1.5};
  double direct = 0.0;
  for (double x : xs) direct += std::exp(x);
  EXPECT_NEAR(LogSumExp(xs), std::log(direct), 1e-12);
}

TEST(MathUtilTest, LogSumExpStableForLargeValues) {
  std::vector<double> xs = {1000.0, 1000.0};
  EXPECT_NEAR(LogSumExp(xs), 1000.0 + std::log(2.0), 1e-9);
  std::vector<double> neg = {-1000.0, -1001.0};
  EXPECT_TRUE(std::isfinite(LogSumExp(neg)));
}

TEST(MathUtilTest, LogSumExpAtLeastMax) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> xs;
    for (int i = 0; i < 5; ++i) xs.push_back(rng.Uniform(-10, 10));
    double mx = *std::max_element(xs.begin(), xs.end());
    EXPECT_GE(LogSumExp(xs), mx);
    EXPECT_LE(LogSumExp(xs), mx + std::log(5.0) + 1e-12);
  }
}

TEST(MathUtilTest, SigmoidSymmetryAndRange) {
  EXPECT_NEAR(Sigmoid(0.0), 0.5, 1e-12);
  EXPECT_NEAR(Sigmoid(3.0) + Sigmoid(-3.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-1000.0), 0.0, 1e-12);
}

TEST(MathUtilTest, LogSigmoidMatchesLogOfSigmoid) {
  for (double x : {-5.0, -0.5, 0.0, 0.5, 5.0}) {
    EXPECT_NEAR(LogSigmoid(x), std::log(Sigmoid(x)), 1e-10);
  }
  EXPECT_TRUE(std::isfinite(LogSigmoid(-1000.0)));
}

TEST(MathUtilTest, CrossEntropyClampsProbabilities) {
  EXPECT_TRUE(std::isfinite(CrossEntropy(1.0, 0.0)));
  EXPECT_TRUE(std::isfinite(CrossEntropy(0.0, 1.0)));
  EXPECT_NEAR(CrossEntropy(1.0, 1.0), 0.0, 1e-9);
}

TEST(MathUtilTest, CosineSimilarityBasics) {
  float a[3] = {1.0f, 0.0f, 0.0f};
  float b[3] = {0.0f, 1.0f, 0.0f};
  float c[3] = {2.0f, 0.0f, 0.0f};
  float z[3] = {0.0f, 0.0f, 0.0f};
  EXPECT_NEAR(CosineSimilarity(a, b, 3), 0.0, 1e-9);
  EXPECT_NEAR(CosineSimilarity(a, c, 3), 1.0, 1e-9);
  EXPECT_NEAR(CosineSimilarity(a, z, 3), 0.0, 1e-9);  // zero-vector guard
}

TEST(MathUtilTest, EuclideanDistance2D) {
  EXPECT_NEAR(EuclideanDistance2D(0, 0, 3, 4), 5.0, 1e-12);
}

// ---------- CRC-32 ----------

TEST(Crc32Test, MatchesKnownVector) {
  // The standard CRC-32 check value: crc("123456789") == 0xCBF43926.
  const char* s = "123456789";
  EXPECT_EQ(Crc32(0, s, 9), 0xCBF43926u);
}

TEST(Crc32Test, EmptyInputIsIdentity) {
  EXPECT_EQ(Crc32(0, nullptr, 0), 0u);
  EXPECT_EQ(Crc32(0x1234u, nullptr, 0), 0x1234u);
}

TEST(Crc32Test, IncrementalChainingMatchesOneShot) {
  const char* s = "the quick brown fox jumps over the lazy dog";
  const size_t n = 43;
  uint32_t one_shot = Crc32(0, s, n);
  for (size_t split = 0; split <= n; ++split) {
    uint32_t chained = Crc32(Crc32(0, s, split), s + split, n - split);
    EXPECT_EQ(chained, one_shot) << "split=" << split;
  }
}

TEST(Crc32Test, SingleBitFlipChangesDigest) {
  std::string bytes(64, '\x00');
  uint32_t clean = Crc32(0, bytes.data(), bytes.size());
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string flipped = bytes;
    flipped[i] ^= 0x01;
    EXPECT_NE(Crc32(0, flipped.data(), flipped.size()), clean)
        << "byte " << i;
  }
}

// ---------- Rng state capture ----------

TEST(RngStateTest, SaveRestoreReplaysSequence) {
  Rng rng(99, 3);
  rng.NextU64();  // advance off the seed state
  RngState mid = rng.SaveState();
  std::vector<uint32_t> expect;
  for (int i = 0; i < 16; ++i) expect.push_back(rng.NextU32());

  Rng replay = Rng::FromState(mid);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(replay.NextU32(), expect[static_cast<size_t>(i)]) << i;
  }
  rng.RestoreState(mid);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(rng.NextU32(), expect[static_cast<size_t>(i)]) << i;
  }
}

TEST(RngStateTest, ShuffleSwapPatternDependsOnlyOnDraws) {
  // The resume path replays skipped epoch shuffles on a dummy vector to
  // advance a probe rng, relying on Fisher-Yates consuming the same draws
  // regardless of element values. Pin that property.
  Rng a(7, 1), b(7, 1);
  std::vector<int> real{5, 4, 3, 2, 1, 0, 9, 8, 7, 6};
  std::vector<int> dummy(real.size());  // all zeros
  a.Shuffle(real);
  b.Shuffle(dummy);
  EXPECT_EQ(a.SaveState(), b.SaveState());
}

TEST(RngStateTest, SerializeRoundTrip) {
  std::string path = testing::TempDir() + "/evrec_rng_state.bin";
  Rng rng(1234, 9);
  rng.NextU64();
  RngState before = rng.SaveState();
  {
    BinaryWriter w(path);
    rng.Serialize(w);
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(path);
  Rng loaded;
  loaded.Deserialize(r);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(loaded.SaveState(), before);
  std::remove(path.c_str());
}

// ---------- binary IO ----------

class BinaryIoTest : public ::testing::Test {
 protected:
  std::string path_ = testing::TempDir() + "/evrec_bio_test.bin";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(BinaryIoTest, RoundTripAllTypes) {
  {
    BinaryWriter w(path_);
    w.WriteMagic("TSTM");
    w.WriteU32(42u);
    w.WriteU64(1ULL << 40);
    w.WriteI32(-7);
    w.WriteF32(1.5f);
    w.WriteF64(2.25);
    w.WriteString("hello");
    w.WriteFloatVector({1.0f, 2.0f});
    w.WriteDoubleVector({3.0, 4.0, 5.0});
    w.WriteI32Vector({-1, 0, 1});
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(path_);
  r.ExpectMagic("TSTM");
  EXPECT_EQ(r.ReadU32(), 42u);
  EXPECT_EQ(r.ReadU64(), 1ULL << 40);
  EXPECT_EQ(r.ReadI32(), -7);
  EXPECT_EQ(r.ReadF32(), 1.5f);
  EXPECT_EQ(r.ReadF64(), 2.25);
  EXPECT_EQ(r.ReadString(), "hello");
  EXPECT_EQ(r.ReadFloatVector(), (std::vector<float>{1.0f, 2.0f}));
  EXPECT_EQ(r.ReadDoubleVector(), (std::vector<double>{3.0, 4.0, 5.0}));
  EXPECT_EQ(r.ReadI32Vector(), (std::vector<int32_t>{-1, 0, 1}));
  EXPECT_TRUE(r.ok());
}

TEST_F(BinaryIoTest, MagicMismatchIsCorruption) {
  {
    BinaryWriter w(path_);
    w.WriteMagic("AAAA");
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(path_);
  r.ExpectMagic("BBBB");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST_F(BinaryIoTest, ShortReadIsCorruption) {
  {
    BinaryWriter w(path_);
    w.WriteU32(7u);
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(path_);
  EXPECT_EQ(r.ReadU32(), 7u);
  r.ReadU64();  // past EOF
  EXPECT_FALSE(r.ok());
}

TEST_F(BinaryIoTest, ImplausibleVectorLengthRejected) {
  {
    BinaryWriter w(path_);
    w.WriteU32(0xFFFFFFFFu);  // absurd element count
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(path_);
  auto v = r.ReadFloatVector();
  EXPECT_TRUE(v.empty());
  EXPECT_FALSE(r.ok());
}

// Writes a checkpoint-shaped file (magic, scalar header fields, payload
// vectors) and returns its byte size.
size_t WriteCheckpointLikeFile(const std::string& path) {
  BinaryWriter w(path);
  w.WriteMagic("CKPT");
  w.WriteU32(3u);  // "version"
  w.WriteU32(2u);  // "dim"
  w.WriteString("tower.user");
  w.WriteFloatVector({0.5f, -1.5f, 2.0f, 0.25f});
  w.WriteDoubleVector({1.0, 2.0});
  EXPECT_TRUE(w.Close().ok());
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return static_cast<size_t>(in.tellg());
}

// Replays the exact read sequence of WriteCheckpointLikeFile and returns
// the reader's final status.
Status ReadCheckpointLikeFile(const std::string& path) {
  BinaryReader r(path);
  r.ExpectMagic("CKPT");
  r.ReadU32();
  r.ReadU32();
  r.ReadString();
  r.ReadFloatVector();
  r.ReadDoubleVector();
  return r.status();
}

TEST_F(BinaryIoTest, TruncationAtAnyOffsetIsCorruptionNotGarbage) {
  size_t full = WriteCheckpointLikeFile(path_);
  ASSERT_GT(full, 8u);
  // Full file reads back clean.
  EXPECT_TRUE(ReadCheckpointLikeFile(path_).ok());
  // Truncate mid-magic, mid-header, mid-string, mid-vector, and one byte
  // short of complete: every prefix must surface Corruption, never OK.
  for (size_t keep : {size_t{2}, size_t{6}, size_t{13}, full / 2,
                      full - 1}) {
    std::string bytes;
    {
      std::ifstream in(path_, std::ios::binary);
      bytes.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
    }
    ASSERT_EQ(bytes.size(), full);
    std::string trunc_path = path_ + ".trunc";
    {
      std::ofstream out(trunc_path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(keep));
    }
    Status s = ReadCheckpointLikeFile(trunc_path);
    EXPECT_FALSE(s.ok()) << "keep=" << keep;
    EXPECT_EQ(s.code(), StatusCode::kCorruption) << "keep=" << keep;
    std::remove(trunc_path.c_str());
  }
}

TEST_F(BinaryIoTest, FlippedMagicByteIsCorruption) {
  WriteCheckpointLikeFile(path_);
  std::string bytes;
  {
    std::ifstream in(path_, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  bytes[1] ^= 0x5A;  // corrupt the magic in place
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  Status s = ReadCheckpointLikeFile(path_);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST_F(BinaryIoTest, MarkCorruptIsStickyAndFirstFailureWins) {
  {
    BinaryWriter w(path_);
    w.WriteU32(7u);
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(path_);
  EXPECT_TRUE(r.ok());
  r.MarkCorrupt("shape mismatch");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_NE(r.status().message().find("shape mismatch"), std::string::npos);
  r.MarkCorrupt("second failure");  // must not overwrite the first
  EXPECT_NE(r.status().message().find("shape mismatch"), std::string::npos);
}

TEST_F(BinaryIoTest, MissingFileIsIoError) {
  BinaryReader r("/nonexistent/dir/file.bin");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST_F(BinaryIoTest, FileExists) {
  EXPECT_FALSE(FileExists(path_));
  {
    BinaryWriter w(path_);
    w.WriteU32(1);
    ASSERT_TRUE(w.Close().ok());
  }
  EXPECT_TRUE(FileExists(path_));
}

// ---------- CSV ----------

TEST(CsvWriterTest, WritesHeaderAndRows) {
  std::string path = testing::TempDir() + "/evrec_csv_test.csv";
  {
    CsvWriter csv(path, {"recall", "precision"});
    csv.WriteRow(std::vector<double>{0.5, 0.25});
    csv.WriteRow(std::vector<std::string>{"1.0", "has,comma"});
    ASSERT_TRUE(csv.Close().ok());
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "recall,precision");
  std::getline(in, line);
  EXPECT_EQ(line, "0.5,0.25");
  std::getline(in, line);
  EXPECT_EQ(line, "1.0,\"has,comma\"");
  std::remove(path.c_str());
}

// ---------- logging ----------

// Captures everything the logger writes while alive (via SetLogStream),
// then hands the records back as lines.
class LogCapture {
 public:
  LogCapture() : file_(std::tmpfile()) {
    EXPECT_NE(file_, nullptr);
    SetLogStream(file_);
  }
  ~LogCapture() {
    SetLogStream(nullptr);
    std::fclose(file_);
  }

  std::vector<std::string> Lines() {
    std::fflush(file_);
    std::rewind(file_);
    std::vector<std::string> lines;
    std::string current;
    int c;
    while ((c = std::fgetc(file_)) != EOF) {
      if (c == '\n') {
        lines.push_back(current);
        current.clear();
      } else {
        current.push_back(static_cast<char>(c));
      }
    }
    EXPECT_TRUE(current.empty()) << "unterminated record: " << current;
    return lines;
  }

 private:
  std::FILE* file_;
};

// Every record: [<level> <ISO-8601 UTC ms> t<ordinal>[/<name>]
// <file>:<line>] <msg> — the /name suffix appears on threads named via
// SetTraceThreadName (pool workers).
const char kRecordPattern[] =
    R"(\[[DIWE] \d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z t\d+(/[-\w.]+)? )"
    R"([^ :]+:\d+\] .*)";

TEST(LoggingTest, RecordCarriesTimestampThreadIdAndLocation) {
  LogCapture capture;
  EVREC_LOG(WARN) << "hello " << 42;
  std::vector<std::string> lines = capture.Lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(std::regex_match(lines[0], std::regex(kRecordPattern)))
      << lines[0];
  EXPECT_NE(lines[0].find("util_test.cc"), std::string::npos);
  EXPECT_NE(lines[0].find("] hello 42"), std::string::npos);
}

TEST(LoggingTest, NamedThreadRecordsCarryTheName) {
  LogCapture capture;
  std::thread worker([] {
    SetTraceThreadName("evrec-w1");
    EVREC_LOG(INFO) << "from a named worker";
  });
  worker.join();
  std::vector<std::string> lines = capture.Lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(std::regex_match(lines[0], std::regex(kRecordPattern)))
      << lines[0];
  EXPECT_NE(lines[0].find("/evrec-w1 "), std::string::npos) << lines[0];
}

TEST(LoggingTest, LevelThresholdSuppressesRecords) {
  LogCapture capture;
  SetLogLevel(LogLevel::kError);
  EVREC_LOG(WARN) << "dropped";
  EVREC_LOG(ERROR) << "kept";
  SetLogLevel(LogLevel::kInfo);
  std::vector<std::string> lines = capture.Lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("kept"), std::string::npos);
}

TEST(LoggingTest, StampedeNeverInterleavesRecords) {
  LogCapture capture;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        EVREC_LOG(WARN) << "thread " << t << " message " << i
                        << " padding-padding-padding-padding";
      }
    });
  }
  for (auto& th : threads) th.join();
  std::vector<std::string> lines = capture.Lines();
  ASSERT_EQ(lines.size(), static_cast<size_t>(kThreads) * kPerThread);
  std::regex record(kRecordPattern);
  for (const auto& line : lines) {
    // A mangled (interleaved or torn) record fails the shape check.
    ASSERT_TRUE(std::regex_match(line, record)) << line;
    ASSERT_NE(line.find("padding-padding-padding-padding"),
              std::string::npos)
        << line;
  }
}

TEST(LoggingTest, LogEveryNEmitsFirstAndEveryNth) {
  LogCapture capture;
  for (int i = 0; i < 10; ++i) {
    EVREC_LOG_EVERY_N(WARN, 4) << "tick " << i;
  }
  std::vector<std::string> lines = capture.Lines();
  // Occurrences 0, 4, 8 -> three records.
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("tick 0"), std::string::npos);
  EXPECT_NE(lines[1].find("tick 4"), std::string::npos);
  EXPECT_NE(lines[2].find("tick 8"), std::string::npos);
}

TEST(LoggingTest, LogEveryNCountsPerCallSite) {
  LogCapture capture;
  for (int i = 0; i < 3; ++i) {
    EVREC_LOG_EVERY_N(WARN, 100) << "site-a " << i;
    EVREC_LOG_EVERY_N(WARN, 100) << "site-b " << i;
  }
  std::vector<std::string> lines = capture.Lines();
  // Independent counters: each site emits its own first occurrence.
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("site-a 0"), std::string::npos);
  EXPECT_NE(lines[1].find("site-b 0"), std::string::npos);
}

TEST(LoggingTest, LogEveryNWithOneEmitsEverything) {
  LogCapture capture;
  for (int i = 0; i < 5; ++i) {
    EVREC_LOG_EVERY_N(WARN, 1) << "all " << i;
  }
  EXPECT_EQ(capture.Lines().size(), 5u);
}

// ---------- json ----------

TEST(JsonTest, ParsesNestedDocument) {
  StatusOr<JsonValue> doc = ParseJson(
      "{\"name\": \"t1\", \"pi\": 3.5, \"neg\": -2e3, \"ok\": true, "
      "\"none\": null, \"list\": [1, \"two\", false], "
      "\"inner\": {\"k\": 7}}");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("name")->string_value, "t1");
  EXPECT_DOUBLE_EQ(doc->Find("pi")->number_value, 3.5);
  EXPECT_DOUBLE_EQ(doc->Find("neg")->number_value, -2000.0);
  EXPECT_TRUE(doc->Find("ok")->bool_value);
  EXPECT_TRUE(doc->Find("none")->IsNull());
  const JsonValue* list = doc->Find("list");
  ASSERT_TRUE(list->IsArray());
  ASSERT_EQ(list->array.size(), 3u);
  EXPECT_DOUBLE_EQ(list->array[0].number_value, 1.0);
  EXPECT_EQ(list->array[1].string_value, "two");
  EXPECT_FALSE(list->array[2].bool_value);
  EXPECT_DOUBLE_EQ(doc->Find("inner")->Find("k")->number_value, 7.0);
  EXPECT_EQ(doc->Find("missing"), nullptr);
}

TEST(JsonTest, DecodesStringEscapes) {
  StatusOr<JsonValue> doc =
      ParseJson("{\"s\": \"a\\\"b\\\\c\\n\\t\\u0041\"}");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("s")->string_value, "a\"b\\c\n\tA");
}

TEST(JsonTest, DuplicateKeysKeepBothAndFindReturnsFirst) {
  StatusOr<JsonValue> doc = ParseJson("{\"a\": 1, \"a\": 2}");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->object.size(), 2u);
  EXPECT_DOUBLE_EQ(doc->Find("a")->number_value, 1.0);
}

TEST(JsonTest, HostileInputIsCorruptionNotUB) {
  const char* bad[] = {
      "",                  // empty
      "{",                 // truncated object
      "[1, 2",             // truncated array
      "{\"a\": }",         // missing value
      "{\"a\" 1}",         // missing colon
      "\"unterminated",    // unterminated string
      "\"bad\\escape\"",   // unknown escape
      "{\"a\": 1} extra",  // trailing garbage
      "nul",               // truncated literal
  };
  for (const char* text : bad) {
    StatusOr<JsonValue> doc = ParseJson(text);
    EXPECT_FALSE(doc.ok()) << "accepted: " << text;
    EXPECT_EQ(doc.status().code(), StatusCode::kCorruption) << text;
  }
}

// ---------- trace context ----------

TEST(TraceContextTest, DeriveSpanIdIsPureAndCollisionResistant) {
  uint64_t id = DeriveSpanId(7, 3, "serve.request", 0);
  EXPECT_EQ(DeriveSpanId(7, 3, "serve.request", 0), id);  // pure
  EXPECT_NE(id, 0u);  // 0 is reserved for "no span"
  // Any coordinate change moves the id.
  EXPECT_NE(DeriveSpanId(8, 3, "serve.request", 0), id);
  EXPECT_NE(DeriveSpanId(7, 4, "serve.request", 0), id);
  EXPECT_NE(DeriveSpanId(7, 3, "serve.candidate", 0), id);
  EXPECT_NE(DeriveSpanId(7, 3, "serve.request", 1), id);
}

TEST(TraceContextTest, ShardBandsAreDisjointAndShardDeterministic) {
  TraceContext parent;
  parent.trace_id = 5;
  parent.span_id = 99;
  parent.depth = 2;
  parent.child_seq = 3;
  std::set<uint64_t> bands;
  for (int s = 0; s < 16; ++s) {
    TraceContext shard = ShardTraceContext(parent, s);
    // Identity and depth pass through; only the sibling band moves.
    EXPECT_EQ(shard.trace_id, parent.trace_id);
    EXPECT_EQ(shard.span_id, parent.span_id);
    EXPECT_EQ(shard.depth, parent.depth);
    EXPECT_EQ(shard.child_seq,
              parent.child_seq + ((static_cast<uint64_t>(s) + 1) << 32));
    bands.insert(shard.child_seq);
    // Same shard index -> same band, no matter which worker runs it.
    EXPECT_EQ(ShardTraceContext(parent, s).child_seq, shard.child_seq);
  }
  EXPECT_EQ(bands.size(), 16u);
  // The caller's own low band stays clear of every shard band.
  EXPECT_LT(parent.child_seq + 100, *bands.begin());
}

TEST(TraceContextTest, ScopedInstallRestoresPreviousContext) {
  TraceContext before = CurrentTraceContext();
  TraceContext inner;
  inner.trace_id = 42;
  inner.span_id = 7;
  inner.depth = 1;
  {
    ScopedTraceContext scope(inner);
    EXPECT_EQ(CurrentTraceContext().trace_id, 42u);
    EXPECT_EQ(CurrentTraceContext().span_id, 7u);
  }
  EXPECT_EQ(CurrentTraceContext().trace_id, before.trace_id);
  EXPECT_EQ(CurrentTraceContext().span_id, before.span_id);
  EXPECT_EQ(CurrentTraceContext().child_seq, before.child_seq);
}

}  // namespace
}  // namespace evrec
