// Tests for the crash-safe training subsystem: the checksummed checkpoint
// format (every byte flip and every truncation length must surface as
// Corruption, never as garbage state), the atomic commit protocol under
// injected IO faults, CheckpointManager retention / fallback / manifest
// recovery, and the headline contract — a training run killed at an
// arbitrary epoch boundary and resumed produces final model bytes
// identical to an uninterrupted run, at any thread count.

#include <gtest/gtest.h>

#include <dirent.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "evrec/gbdt/gbdt.h"
#include "evrec/model/joint_model.h"
#include "evrec/model/siamese.h"
#include "evrec/model/trainer.h"
#include "evrec/util/binary_io.h"
#include "evrec/util/checkpoint.h"
#include "evrec/util/fault_injection.h"
#include "evrec/util/logging.h"
#include "evrec/util/rng.h"

namespace evrec {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Removes every regular file in `dir`, then the directory itself. The
// checkpoint layer never nests directories, so one level is enough.
void RemoveDirRecursive(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d != nullptr) {
    while (struct dirent* ent = ::readdir(d)) {
      std::string name = ent->d_name;
      if (name == "." || name == "..") continue;
      std::remove((dir + "/" + name).c_str());
    }
    ::closedir(d);
  }
  ::rmdir(dir.c_str());
}

// ---------- checkpoint file format ----------

class CheckpointFormatTest : public ::testing::Test {
 protected:
  std::string path_ = testing::TempDir() + "/evrec_ckpt_fmt.bin";
  void TearDown() override { std::remove(path_.c_str()); }

  // A two-section file exercising every payload type the trainers use.
  void WriteSample() {
    CheckpointWriter w(path_);
    w.BeginSection("alpha");
    w.raw().WriteU32(42u);
    w.raw().WriteString("hello");
    w.raw().WriteDoubleVector({1.5, -2.5, 3.25});
    w.EndSection();
    w.BeginSection("beta");
    w.raw().WriteU64(1ULL << 40);
    w.raw().WriteFloatVector({0.5f, -0.5f});
    w.EndSection();
    ASSERT_TRUE(w.Finish().ok());
  }

  // Replays the exact read sequence of WriteSample. Returns the first
  // failure (reader status or footer verification), OK for a clean file.
  Status ReadSample(const std::string& path) {
    CheckpointReader r(path);
    r.EnterSection("alpha");
    r.raw().ReadU32();
    r.raw().ReadString();
    r.raw().ReadDoubleVector();
    r.LeaveSection();
    r.EnterSection("beta");
    r.raw().ReadU64();
    r.raw().ReadFloatVector();
    r.LeaveSection();
    if (!r.ok()) return r.status();
    return r.Finish();
  }
};

TEST_F(CheckpointFormatTest, RoundTrip) {
  WriteSample();
  CheckpointReader r(path_);
  r.EnterSection("alpha");
  EXPECT_EQ(r.raw().ReadU32(), 42u);
  EXPECT_EQ(r.raw().ReadString(), "hello");
  EXPECT_EQ(r.raw().ReadDoubleVector(),
            (std::vector<double>{1.5, -2.5, 3.25}));
  r.LeaveSection();
  r.EnterSection("beta");
  EXPECT_EQ(r.raw().ReadU64(), 1ULL << 40);
  EXPECT_EQ(r.raw().ReadFloatVector(), (std::vector<float>{0.5f, -0.5f}));
  r.LeaveSection();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.Finish().ok());
}

TEST_F(CheckpointFormatTest, EveryByteFlipIsDetected) {
  WriteSample();
  std::string clean = ReadFileBytes(path_);
  ASSERT_FALSE(clean.empty());
  ASSERT_TRUE(ReadSample(path_).ok());
  std::string flipped_path = path_ + ".flip";
  for (size_t i = 0; i < clean.size(); ++i) {
    std::string bytes = clean;
    bytes[i] ^= 0x40;
    WriteFileBytes(flipped_path, bytes);
    Status s = ReadSample(flipped_path);
    EXPECT_FALSE(s.ok()) << "flip at byte " << i << " went undetected";
  }
  std::remove(flipped_path.c_str());
}

TEST_F(CheckpointFormatTest, EveryTruncationLengthIsDetected) {
  WriteSample();
  std::string clean = ReadFileBytes(path_);
  ASSERT_FALSE(clean.empty());
  std::string trunc_path = path_ + ".trunc";
  for (size_t keep = 0; keep < clean.size(); ++keep) {
    WriteFileBytes(trunc_path, clean.substr(0, keep));
    Status s = ReadSample(trunc_path);
    EXPECT_FALSE(s.ok()) << "truncation to " << keep << " bytes passed";
  }
  std::remove(trunc_path.c_str());
}

TEST_F(CheckpointFormatTest, TrailingBytesAreDetected) {
  WriteSample();
  std::string bytes = ReadFileBytes(path_);
  bytes.push_back('\x00');
  WriteFileBytes(path_, bytes);
  Status s = ReadSample(path_);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST_F(CheckpointFormatTest, WrongSectionNameIsCorruption) {
  WriteSample();
  CheckpointReader r(path_);
  r.EnterSection("gamma");  // file starts with "alpha"
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST_F(CheckpointFormatTest, UnsupportedVersionIsCorruption) {
  WriteSample();
  std::string bytes = ReadFileBytes(path_);
  bytes[4] = static_cast<char>(0x7F);  // version word follows "EVCP"
  WriteFileBytes(path_, bytes);
  CheckpointReader r(path_);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

// ---------- atomic commit + fault injection ----------

class WriteFileAtomicTest : public ::testing::Test {
 protected:
  std::string path_ = testing::TempDir() + "/evrec_atomic.bin";
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }

  static void WritePayload(CheckpointWriter& w) {
    w.BeginSection("payload");
    w.raw().WriteDoubleVector({1.0, 2.0, 3.0, 4.0});
    w.EndSection();
  }
};

TEST_F(WriteFileAtomicTest, CommitPublishesFileAndRemovesTmp) {
  ASSERT_TRUE(WriteFileAtomic(path_, WritePayload).ok());
  EXPECT_TRUE(FileExists(path_));
  EXPECT_FALSE(FileExists(path_ + ".tmp"));
  CheckpointReader r(path_);
  r.EnterSection("payload");
  EXPECT_EQ(r.raw().ReadDoubleVector(),
            (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
  r.LeaveSection();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.Finish().ok());
}

TEST_F(WriteFileAtomicTest, InjectedWriteFailurePublishesNothing) {
  IoFaultConfig cfg;
  cfg.write_error_rate = 1.0;
  IoFaultInjector faults(cfg);
  Status s = WriteFileAtomic(path_, WritePayload, &faults);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_FALSE(FileExists(path_));
  EXPECT_FALSE(FileExists(path_ + ".tmp"));
}

TEST_F(WriteFileAtomicTest, InjectedTornWritePublishesDetectableFile) {
  ASSERT_TRUE(WriteFileAtomic(path_, WritePayload).ok());
  uint64_t clean_size = FileSize(path_);

  IoFaultConfig cfg;
  cfg.torn_write_rate = 1.0;
  cfg.max_torn_bytes = 16;
  IoFaultInjector faults(cfg);
  Status s = WriteFileAtomic(path_, WritePayload, &faults);
  // The commit reports failure but the truncated file IS published — that
  // is the modelled crash. The CRC layer must reject it on read.
  EXPECT_FALSE(s.ok());
  ASSERT_TRUE(FileExists(path_));
  EXPECT_LT(FileSize(path_), clean_size);
  CheckpointReader r(path_);
  r.EnterSection("payload");
  r.raw().ReadDoubleVector();
  r.LeaveSection();
  Status verify = r.ok() ? r.Finish() : r.status();
  EXPECT_FALSE(verify.ok());
}

// ---------- CheckpointManager ----------

class CheckpointManagerTest : public ::testing::Test {
 protected:
  std::string dir_ = testing::TempDir() + "/evrec_ckpt_mgr";
  void TearDown() override { RemoveDirRecursive(dir_); }

  static CheckpointWriteFn Payload(uint32_t tag) {
    return [tag](CheckpointWriter& w) {
      w.BeginSection("state");
      w.raw().WriteU32(tag);
      w.EndSection();
    };
  }

  // Reads back the tag written by Payload.
  static Status ReadTag(CheckpointReader& r, uint32_t* tag) {
    r.EnterSection("state");
    *tag = r.raw().ReadU32();
    r.LeaveSection();
    return r.status();
  }
};

TEST_F(CheckpointManagerTest, RetentionKeepsNewestAndBest) {
  CheckpointOptions opt;
  opt.dir = dir_;
  opt.keep_last = 2;
  opt.keep_best = true;
  CheckpointManager mgr(opt);
  ASSERT_TRUE(mgr.init_status().ok());
  // Step 2 has the best (lowest) metric; 4 and 5 are the newest.
  const double metrics[] = {0.9, 0.1, 0.8, 0.7, 0.6};
  for (int step = 1; step <= 5; ++step) {
    ASSERT_TRUE(mgr.Write(step, metrics[step - 1],
                          Payload(static_cast<uint32_t>(step)))
                    .ok());
  }
  std::vector<CheckpointInfo> list = mgr.ListCheckpoints();
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].step, 5);
  EXPECT_EQ(list[1].step, 4);
  EXPECT_EQ(list[2].step, 2);  // kept as best despite being old
  for (const auto& info : list) EXPECT_TRUE(FileExists(info.path));
  // Expired checkpoints are gone from disk.
  EXPECT_FALSE(FileExists(dir_ + "/ckpt_0000000001.bin"));
  EXPECT_FALSE(FileExists(dir_ + "/ckpt_0000000003.bin"));
  auto best = mgr.Best();
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->step, 2);
  EXPECT_EQ(best->metric, 0.1);
}

TEST_F(CheckpointManagerTest, CorruptLatestFallsBackToPreviousValid) {
  CheckpointOptions opt;
  opt.dir = dir_;
  CheckpointManager mgr(opt);
  ASSERT_TRUE(mgr.init_status().ok());
  for (int step = 1; step <= 3; ++step) {
    ASSERT_TRUE(mgr.Write(step, 1.0, Payload(static_cast<uint32_t>(step)))
                    .ok());
  }
  // Flip a payload byte in the newest checkpoint.
  std::string newest = mgr.ListCheckpoints()[0].path;
  std::string bytes = ReadFileBytes(newest);
  bytes[bytes.size() / 2] ^= 0x01;
  WriteFileBytes(newest, bytes);

  uint32_t tag = 0;
  auto loaded = mgr.LoadLatestValid(
      [&tag](CheckpointReader& r) { return ReadTag(r, &tag); });
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->step, 2);
  EXPECT_EQ(tag, 2u);
  EXPECT_EQ(mgr.corrupt_skipped(), 1);
}

TEST_F(CheckpointManagerTest, AllCorruptIsNotFound) {
  CheckpointOptions opt;
  opt.dir = dir_;
  CheckpointManager mgr(opt);
  ASSERT_TRUE(mgr.Write(1, 1.0, Payload(1)).ok());
  std::string path = mgr.ListCheckpoints()[0].path;
  std::string bytes = ReadFileBytes(path);
  WriteFileBytes(path, bytes.substr(0, bytes.size() / 2));

  uint32_t tag = 0;
  auto loaded = mgr.LoadLatestValid(
      [&tag](CheckpointReader& r) { return ReadTag(r, &tag); });
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(mgr.corrupt_skipped(), 1);
}

TEST_F(CheckpointManagerTest, LostManifestRecoversByDirectoryScan) {
  CheckpointOptions opt;
  opt.dir = dir_;
  {
    CheckpointManager mgr(opt);
    for (int step = 1; step <= 3; ++step) {
      ASSERT_TRUE(mgr.Write(step, 0.5, Payload(static_cast<uint32_t>(step)))
                      .ok());
    }
  }
  ASSERT_EQ(std::remove((dir_ + "/ckpt_MANIFEST.bin").c_str()), 0);

  CheckpointManager rebuilt(opt);
  std::vector<CheckpointInfo> list = rebuilt.ListCheckpoints();
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].step, 3);
  // Scanned entries carry unknown (+inf) metrics: never "best".
  EXPECT_TRUE(std::isinf(list[0].metric));
  uint32_t tag = 0;
  auto loaded = rebuilt.LoadLatestValid(
      [&tag](CheckpointReader& r) { return ReadTag(r, &tag); });
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->step, 3);
  EXPECT_EQ(tag, 3u);
}

TEST_F(CheckpointManagerTest, StaleManifestRowsAreFiltered) {
  CheckpointOptions opt;
  opt.dir = dir_;
  {
    CheckpointManager mgr(opt);
    ASSERT_TRUE(mgr.Write(1, 0.5, Payload(1)).ok());
    ASSERT_TRUE(mgr.Write(2, 0.4, Payload(2)).ok());
  }
  // Simulate a crash between checkpoint deletion and manifest rewrite.
  ASSERT_EQ(std::remove((dir_ + "/ckpt_0000000002.bin").c_str()), 0);
  CheckpointManager rebuilt(opt);
  std::vector<CheckpointInfo> list = rebuilt.ListCheckpoints();
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0].step, 1);
}

TEST_F(CheckpointManagerTest, TornCommitIsSkippedOnLoad) {
  CheckpointOptions opt;
  opt.dir = dir_;
  {
    CheckpointManager mgr(opt);
    ASSERT_TRUE(mgr.Write(1, 0.5, Payload(1)).ok());
  }
  // A second manager suffers a torn commit at step 2: the truncated file
  // lands on disk but the write reports failure.
  IoFaultConfig fcfg;
  fcfg.torn_write_rate = 1.0;
  fcfg.max_torn_bytes = 8;
  IoFaultInjector faults(fcfg);
  CheckpointOptions faulty = opt;
  faulty.fault_injector = &faults;
  {
    CheckpointManager mgr(faulty);
    EXPECT_FALSE(mgr.Write(2, 0.4, Payload(2)).ok());
  }
  EXPECT_TRUE(FileExists(dir_ + "/ckpt_0000000002.bin"));
  // Force the scan path so the torn file is considered — and rejected.
  ASSERT_EQ(std::remove((dir_ + "/ckpt_MANIFEST.bin").c_str()), 0);
  CheckpointManager rebuilt(opt);
  uint32_t tag = 0;
  auto loaded = rebuilt.LoadLatestValid(
      [&tag](CheckpointReader& r) { return ReadTag(r, &tag); });
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->step, 1);
  EXPECT_EQ(tag, 1u);
  EXPECT_EQ(rebuilt.corrupt_skipped(), 1);
}

// ---------- trainer kill-and-resume determinism ----------

text::EncodedText MakeDoc(std::vector<int> ids) {
  text::EncodedText e;
  e.word_index.resize(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    e.word_index[i] = static_cast<int>(i);
  }
  e.token_ids = std::move(ids);
  return e;
}

model::JointModelConfig TinyConfig() {
  model::JointModelConfig c;
  c.embedding_dim = 6;
  c.module_out_dim = 6;
  c.hidden_dim = 12;
  c.rep_dim = 8;
  c.text_windows = {1, 2};
  c.categorical_windows = {1};
  c.learning_rate = 0.1f;
  c.batch_size = 4;
  c.max_epochs = 3;
  c.early_stop_patience = 40;
  c.validation_fraction = 0.15;
  c.seed = 11;
  return c;
}

// Same toy construction as parallel_test: two latent topics.
model::RepDataset MakeToyDataset() {
  model::RepDataset data;
  Rng rng(51);
  for (int topic = 0; topic < 2; ++topic) {
    for (int u = 0; u < 8; ++u) {
      std::vector<int> ids;
      for (int i = 0; i < 5; ++i) {
        ids.push_back(topic * 8 + rng.UniformInt(0, 7));
      }
      data.user_inputs.push_back(
          {MakeDoc(ids), MakeDoc({topic * 2 + rng.UniformInt(0, 1)})});
    }
    for (int e = 0; e < 8; ++e) {
      std::vector<int> ids;
      for (int i = 0; i < 6; ++i) {
        ids.push_back(topic * 8 + rng.UniformInt(0, 7));
      }
      data.event_inputs.push_back({MakeDoc(ids)});
    }
  }
  for (int u = 0; u < 16; ++u) {
    for (int e = 0; e < 16; ++e) {
      data.pairs.push_back({u, e, (u / 8) == (e / 8) ? 1.0f : 0.0f});
    }
  }
  return data;
}

std::string ModelBytes(const model::JointModel& m, const std::string& tag) {
  std::string path = testing::TempDir() + "/evrec_ckpt_model_" + tag + ".bin";
  BinaryWriter w(path);
  m.Serialize(w);
  EXPECT_TRUE(w.Close().ok());
  std::string bytes = ReadFileBytes(path);
  std::remove(path.c_str());
  return bytes;
}

struct RepRun {
  model::TrainStats stats;
  std::string bytes;
};

// One full trainer run. `ckpt_dir` empty disables checkpointing; the
// model init and training rng seeds are fixed so every run shares the
// stochastic trajectory.
RepRun RunRepTrainer(const std::string& ckpt_dir, bool resume, int threads) {
  model::JointModelConfig cfg = TinyConfig();
  model::JointModel m(cfg, 16, 4, 16);
  Rng init(52);
  m.RandomInit(init);
  model::RepDataset data = MakeToyDataset();

  model::TrainerConfig tcfg;
  tcfg.threads = threads;
  tcfg.grad_shards = 4;
  // Guardrails off for the determinism runs: no rollback may fire.
  tcfg.divergence_factor = 1e18;
  std::unique_ptr<CheckpointManager> mgr;
  if (!ckpt_dir.empty()) {
    CheckpointOptions opt;
    opt.dir = ckpt_dir;
    mgr = std::make_unique<CheckpointManager>(opt);
    tcfg.checkpoints = mgr.get();
    tcfg.checkpoint_every = 1;
    tcfg.resume = resume;
  }
  model::RepTrainer trainer(&m, tcfg);
  Rng train_rng(53);
  RepRun run;
  run.stats = trainer.Train(data, train_rng);
  run.bytes = ModelBytes(m, "t" + std::to_string(threads));
  return run;
}

class ResumeDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetLogLevel(LogLevel::kWarn);
    CrashPoints::Global()->Reset();
  }
  void TearDown() override {
    CrashPoints::Global()->Reset();
    SetLogLevel(LogLevel::kInfo);
  }
};

TEST_F(ResumeDeterminismTest, KilledAndResumedRepTrainerIsBitIdentical) {
  RepRun baseline = RunRepTrainer("", false, 1);
  ASSERT_FALSE(baseline.bytes.empty());
  ASSERT_EQ(baseline.stats.epochs_run, 3);

  for (int threads : {1, 4}) {
    std::string dir = testing::TempDir() + "/evrec_resume_rep_t" +
                      std::to_string(threads);
    // Kill after epoch 1 (the second epoch boundary), leaving checkpoints
    // for epochs 1 and 2 on disk.
    CrashPoints::Global()->Arm("trainer.epoch_end", 2);
    RepRun killed = RunRepTrainer(dir, false, threads);
    EXPECT_TRUE(killed.stats.interrupted) << "threads=" << threads;
    EXPECT_EQ(killed.stats.epochs_run, 2);
    EXPECT_NE(killed.bytes, baseline.bytes)
        << "the interrupted run must actually be partial";

    RepRun resumed = RunRepTrainer(dir, true, threads);
    EXPECT_EQ(resumed.stats.resumed_from_epoch, 2) << "threads=" << threads;
    EXPECT_EQ(resumed.stats.epochs_run, 3);
    EXPECT_FALSE(resumed.stats.interrupted);
    // The headline contract: byte-identical final parameters and
    // bit-identical loss curves, killed or not, at any thread count.
    EXPECT_EQ(resumed.bytes, baseline.bytes) << "threads=" << threads;
    EXPECT_EQ(resumed.stats.train_loss, baseline.stats.train_loss);
    EXPECT_EQ(resumed.stats.validation_loss,
              baseline.stats.validation_loss);
    EXPECT_EQ(resumed.stats.grad_norms, baseline.stats.grad_norms);
    RemoveDirRecursive(dir);
  }
}

TEST_F(ResumeDeterminismTest, IncompatibleCheckpointIsRefused) {
  std::string dir = testing::TempDir() + "/evrec_resume_incompat";
  CrashPoints::Global()->Arm("trainer.epoch_end", 2);
  RunRepTrainer(dir, false, 1);  // leaves grad_shards=4 checkpoints
  CrashPoints::Global()->Reset();

  // Same data, different gradient-reduction layout: the checkpoint must be
  // refused (its float association differs) and training start fresh.
  model::JointModelConfig cfg = TinyConfig();
  model::JointModel m(cfg, 16, 4, 16);
  Rng init(52);
  m.RandomInit(init);
  model::RepDataset data = MakeToyDataset();
  model::TrainerConfig tcfg;
  tcfg.threads = 1;
  tcfg.grad_shards = 2;
  tcfg.divergence_factor = 1e18;
  CheckpointOptions opt;
  opt.dir = dir;
  CheckpointManager mgr(opt);
  tcfg.checkpoints = &mgr;
  tcfg.resume = true;
  model::RepTrainer trainer(&m, tcfg);
  Rng train_rng(53);
  model::TrainStats stats = trainer.Train(data, train_rng);
  EXPECT_EQ(stats.resumed_from_epoch, -1);
  EXPECT_EQ(stats.epochs_run, 3);
  RemoveDirRecursive(dir);
}

// ---------- divergence rollback ----------

TEST_F(ResumeDeterminismTest, DivergenceRollsBackThenGivesUp) {
  std::string dir = testing::TempDir() + "/evrec_rollback";
  model::JointModelConfig cfg = TinyConfig();
  cfg.max_epochs = 4;
  model::JointModel m(cfg, 16, 4, 16);
  Rng init(52);
  m.RandomInit(init);
  model::RepDataset data = MakeToyDataset();

  model::TrainerConfig tcfg;
  tcfg.threads = 1;
  tcfg.grad_shards = 4;
  // A paranoid detector: any epoch whose loss exceeds a fifth of the best
  // counts as an explosion, so epoch 1 always "diverges". The trainer must
  // roll back to the epoch-1 checkpoint with a cut lr, retry, and declare
  // divergence only after max_rollbacks attempts.
  tcfg.divergence_factor = 0.2;
  tcfg.max_rollbacks = 2;
  CheckpointOptions opt;
  opt.dir = dir;
  CheckpointManager mgr(opt);
  tcfg.checkpoints = &mgr;
  tcfg.checkpoint_every = 1;
  model::RepTrainer trainer(&m, tcfg);
  Rng train_rng(53);
  model::TrainStats stats = trainer.Train(data, train_rng);

  EXPECT_EQ(stats.rollbacks, 2);
  EXPECT_TRUE(stats.diverged);
  EXPECT_FALSE(stats.early_stopped);
  // The run gave up mid-training: at least one good epoch and one final
  // diverging one made it into the curves (which epoch first "explodes"
  // depends on how fast the toy loss drops, so it is not pinned here).
  EXPECT_GE(stats.epochs_run, 2);
  EXPECT_LE(stats.epochs_run, cfg.max_epochs);
  EXPECT_EQ(stats.train_loss.size(),
            static_cast<size_t>(stats.epochs_run));
  RemoveDirRecursive(dir);
}

// ---------- siamese kill-and-resume ----------

struct SiameseRun {
  model::SiameseStats stats;
  std::string bytes;
};

SiameseRun RunSiamese(const std::string& ckpt_dir, bool resume) {
  model::JointModelConfig cfg = TinyConfig();
  model::JointModel m(cfg, 16, 4, 16);
  Rng init(52);
  m.RandomInit(init);

  std::vector<text::EncodedText> titles, bodies;
  Rng doc_rng(61);
  for (int i = 0; i < 6; ++i) {
    std::vector<int> t_ids, b_ids;
    for (int k = 0; k < 4; ++k) t_ids.push_back(doc_rng.UniformInt(0, 15));
    for (int k = 0; k < 7; ++k) b_ids.push_back(doc_rng.UniformInt(0, 15));
    titles.push_back(MakeDoc(t_ids));
    bodies.push_back(MakeDoc(b_ids));
  }

  model::SiameseConfig scfg;
  scfg.max_epochs = 3;
  scfg.batch_size = 4;
  scfg.grad_shards = 2;
  scfg.negatives_per_positive = 1;
  std::unique_ptr<CheckpointManager> mgr;
  if (!ckpt_dir.empty()) {
    CheckpointOptions opt;
    opt.dir = ckpt_dir;
    opt.prefix = "siamese";
    mgr = std::make_unique<CheckpointManager>(opt);
    scfg.checkpoints = mgr.get();
    scfg.checkpoint_every = 1;
    scfg.resume = resume;
  }
  Rng srng(90);
  SiameseRun run;
  run.stats = model::SiamesePretrain(&m.mutable_event_tower(), titles,
                                     bodies, scfg, srng);
  std::string path = testing::TempDir() + "/evrec_siamese_tower.bin";
  BinaryWriter w(path);
  m.event_tower().Serialize(w);
  EXPECT_TRUE(w.Close().ok());
  run.bytes = ReadFileBytes(path);
  std::remove(path.c_str());
  return run;
}

TEST_F(ResumeDeterminismTest, KilledAndResumedSiameseIsBitIdentical) {
  SiameseRun baseline = RunSiamese("", false);
  ASSERT_FALSE(baseline.bytes.empty());
  ASSERT_EQ(baseline.stats.epochs_run, 3);

  std::string dir = testing::TempDir() + "/evrec_resume_siamese";
  CrashPoints::Global()->Arm("siamese.epoch_end", 2);
  SiameseRun killed = RunSiamese(dir, false);
  EXPECT_TRUE(killed.stats.interrupted);
  EXPECT_EQ(killed.stats.epochs_run, 2);
  EXPECT_NE(killed.bytes, baseline.bytes);

  SiameseRun resumed = RunSiamese(dir, true);
  EXPECT_EQ(resumed.stats.resumed_from_epoch, 2);
  EXPECT_EQ(resumed.stats.epochs_run, 3);
  EXPECT_EQ(resumed.bytes, baseline.bytes);
  EXPECT_EQ(resumed.stats.train_loss, baseline.stats.train_loss);
  RemoveDirRecursive(dir);
}

// ---------- gbdt kill-and-resume ----------

struct GbdtRun {
  gbdt::GbdtTrainStats stats;
  std::string bytes;
};

GbdtRun RunGbdt(const std::string& ckpt_dir, bool resume) {
  const int n = 120;
  gbdt::DataMatrix x(n, 3);
  std::vector<float> y(static_cast<size_t>(n));
  Rng rng(41);
  for (int i = 0; i < n; ++i) {
    float a = static_cast<float>(rng.Uniform(-1, 1));
    float b = static_cast<float>(rng.Uniform(-1, 1));
    float c = static_cast<float>(rng.Uniform(-1, 1));
    x.Set(i, 0, a);
    x.Set(i, 1, b);
    x.Set(i, 2, c);
    y[static_cast<size_t>(i)] = (a + 0.5f * b > 0.0f) ? 1.0f : 0.0f;
  }
  gbdt::GbdtConfig cfg;
  cfg.num_trees = 12;
  cfg.max_leaves = 4;
  cfg.min_samples_leaf = 5;
  cfg.subsample = 0.8;
  std::unique_ptr<CheckpointManager> mgr;
  if (!ckpt_dir.empty()) {
    CheckpointOptions opt;
    opt.dir = ckpt_dir;
    opt.prefix = "gbdt";
    mgr = std::make_unique<CheckpointManager>(opt);
    cfg.checkpoints = mgr.get();
    cfg.checkpoint_every = 4;
    cfg.resume = resume;
  }
  gbdt::GbdtModel model;
  GbdtRun run;
  run.stats = model.Train(x, y, cfg);
  std::string path = testing::TempDir() + "/evrec_gbdt_model.bin";
  BinaryWriter w(path);
  model.Serialize(w);
  EXPECT_TRUE(w.Close().ok());
  run.bytes = ReadFileBytes(path);
  std::remove(path.c_str());
  return run;
}

TEST_F(ResumeDeterminismTest, KilledAndResumedGbdtIsBitIdentical) {
  GbdtRun baseline = RunGbdt("", false);
  ASSERT_FALSE(baseline.bytes.empty());
  ASSERT_FALSE(baseline.stats.interrupted);

  std::string dir = testing::TempDir() + "/evrec_resume_gbdt";
  // Kill after tree 5; the newest durable checkpoint is at tree 4.
  CrashPoints::Global()->Arm("gbdt.tree_end", 6);
  GbdtRun killed = RunGbdt(dir, false);
  EXPECT_TRUE(killed.stats.interrupted);
  EXPECT_NE(killed.bytes, baseline.bytes);

  GbdtRun resumed = RunGbdt(dir, true);
  EXPECT_EQ(resumed.stats.resumed_from_tree, 4);
  EXPECT_FALSE(resumed.stats.interrupted);
  EXPECT_EQ(resumed.bytes, baseline.bytes);
  EXPECT_EQ(resumed.stats.train_logloss, baseline.stats.train_logloss);
  RemoveDirRecursive(dir);
}

}  // namespace
}  // namespace evrec
