// Tests for evrec/gbdt: quantile binning, tree prediction, best-first tree
// construction, and the full boosted model (logistic loss, subsampling,
// importance, serialization).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "evrec/eval/metrics.h"
#include "evrec/gbdt/binner.h"
#include "evrec/gbdt/gbdt.h"
#include "evrec/gbdt/tree_builder.h"
#include "evrec/util/logging.h"
#include "evrec/util/rng.h"

namespace evrec {
namespace gbdt {
namespace {

// ---------- binner ----------

TEST(BinnerTest, ConstantFeatureGetsSingleBin) {
  DataMatrix x(10, 1);
  for (int r = 0; r < 10; ++r) x.Set(r, 0, 5.0f);
  QuantileBinner binner(x, 16);
  EXPECT_EQ(binner.NumBins(0), 1);
  EXPECT_EQ(binner.BinOf(0, 5.0f), 0);
  EXPECT_EQ(binner.BinOf(0, 100.0f), 0);
}

TEST(BinnerTest, BinOfIsMonotonic) {
  Rng rng(1);
  DataMatrix x(200, 1);
  for (int r = 0; r < 200; ++r) {
    x.Set(r, 0, static_cast<float>(rng.Normal()));
  }
  QuantileBinner binner(x, 32);
  uint8_t prev = binner.BinOf(0, -10.0f);
  for (float v = -10.0f; v <= 10.0f; v += 0.25f) {
    uint8_t b = binner.BinOf(0, v);
    EXPECT_GE(b, prev);
    prev = b;
  }
  EXPECT_GT(binner.NumBins(0), 8);
}

TEST(BinnerTest, ValuesRespectUpperBounds) {
  Rng rng(2);
  DataMatrix x(300, 1);
  for (int r = 0; r < 300; ++r) {
    x.Set(r, 0, static_cast<float>(rng.Uniform(0, 100)));
  }
  QuantileBinner binner(x, 16);
  for (int r = 0; r < 300; ++r) {
    float v = x.At(r, 0);
    int b = binner.BinOf(0, v);
    if (b < binner.NumBins(0) - 1) {
      EXPECT_LE(v, binner.UpperBound(0, b));
    }
    if (b > 0) {
      EXPECT_GT(v, binner.UpperBound(0, b - 1));
    }
  }
}

TEST(BinnerTest, LowCardinalityFeatureOneDistinctValuePerBin) {
  DataMatrix x(90, 1);
  for (int r = 0; r < 90; ++r) x.Set(r, 0, static_cast<float>(r % 3));
  QuantileBinner binner(x, 64);
  EXPECT_EQ(binner.NumBins(0), 3);
  EXPECT_NE(binner.BinOf(0, 0.0f), binner.BinOf(0, 1.0f));
  EXPECT_NE(binner.BinOf(0, 1.0f), binner.BinOf(0, 2.0f));
}

TEST(BinnerTest, TransformMatchesBinOf) {
  Rng rng(3);
  DataMatrix x(50, 3);
  for (int r = 0; r < 50; ++r) {
    for (int c = 0; c < 3; ++c) {
      x.Set(r, c, static_cast<float>(rng.Normal()));
    }
  }
  QuantileBinner binner(x, 8);
  BinnedMatrix binned = binner.Transform(x);
  for (int r = 0; r < 50; ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_EQ(binned.Code(r, c), binner.BinOf(c, x.At(r, c)));
    }
  }
}

// ---------- tree ----------

TEST(TreeTest, PredictNavigatesSplits) {
  RegressionTree t;
  TreeNode root;
  root.is_leaf = false;
  root.feature = 0;
  root.threshold = 0.5f;
  root.left = 1;
  root.right = 2;
  t.AddNode(root);
  TreeNode l, r;
  l.leaf_value = -1.0f;
  r.leaf_value = 2.0f;
  t.AddNode(l);
  t.AddNode(r);
  float row_a[1] = {0.3f};
  float row_b[1] = {0.9f};
  EXPECT_FLOAT_EQ(t.Predict(row_a), -1.0f);
  EXPECT_FLOAT_EQ(t.Predict(row_b), 2.0f);
  EXPECT_EQ(t.num_leaves(), 2);
}

TEST(TreeTest, EmptyTreePredictsZero) {
  RegressionTree t;
  float row[1] = {1.0f};
  EXPECT_FLOAT_EQ(t.Predict(row), 0.0f);
}

// ---------- tree builder ----------

TEST(TreeBuilderTest, FitsAStepFunctionExactly) {
  // Squared loss on y = (x > 0 ? 1 : -1): grad = pred - y = -y at pred=0,
  // hess = 1. One split should recover the two leaf means.
  const int n = 100;
  DataMatrix x(n, 1);
  std::vector<float> grad(n), hess(n, 1.0f);
  std::vector<int> rows(n);
  for (int r = 0; r < n; ++r) {
    float v = static_cast<float>(r) / n - 0.5f;
    x.Set(r, 0, v);
    grad[static_cast<size_t>(r)] = v > 0 ? -1.0f : 1.0f;
    rows[static_cast<size_t>(r)] = r;
  }
  QuantileBinner binner(x, 32);
  BinnedMatrix binned = binner.Transform(x);
  TreeParams params;
  params.max_leaves = 2;
  params.lambda = 0.0;
  params.min_samples_leaf = 5;
  TreeBuilder builder(binned, binner, params);
  RegressionTree tree = builder.Build(grad, hess, rows);
  EXPECT_EQ(tree.num_leaves(), 2);
  float neg[1] = {-0.4f}, pos[1] = {0.4f};
  EXPECT_NEAR(tree.Predict(neg), -1.0f, 0.05f);
  EXPECT_NEAR(tree.Predict(pos), 1.0f, 0.05f);
}

TEST(TreeBuilderTest, RespectsMaxLeaves) {
  Rng rng(5);
  const int n = 500;
  DataMatrix x(n, 4);
  std::vector<float> grad(n), hess(n, 1.0f);
  std::vector<int> rows(n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < 4; ++c) {
      x.Set(r, c, static_cast<float>(rng.Normal()));
    }
    grad[static_cast<size_t>(r)] = static_cast<float>(rng.Normal());
    rows[static_cast<size_t>(r)] = r;
  }
  QuantileBinner binner(x, 16);
  BinnedMatrix binned = binner.Transform(x);
  TreeParams params;
  params.max_leaves = 12;
  params.min_samples_leaf = 5;
  params.min_split_gain = 0.0;
  TreeBuilder builder(binned, binner, params);
  RegressionTree tree = builder.Build(grad, hess, rows);
  EXPECT_LE(tree.num_leaves(), 12);
  EXPECT_GE(tree.num_leaves(), 2);
}

TEST(TreeBuilderTest, PureTargetYieldsSingleLeaf) {
  const int n = 60;
  DataMatrix x(n, 2);
  std::vector<float> grad(n, 0.0f), hess(n, 1.0f);
  std::vector<int> rows(n);
  Rng rng(6);
  for (int r = 0; r < n; ++r) {
    x.Set(r, 0, static_cast<float>(rng.Normal()));
    x.Set(r, 1, static_cast<float>(rng.Normal()));
    rows[static_cast<size_t>(r)] = r;
  }
  QuantileBinner binner(x, 8);
  BinnedMatrix binned = binner.Transform(x);
  TreeParams params;
  TreeBuilder builder(binned, binner, params);
  RegressionTree tree = builder.Build(grad, hess, rows);
  // Zero gradient everywhere -> no split has positive gain.
  EXPECT_EQ(tree.num_leaves(), 1);
  float row[2] = {0.0f, 0.0f};
  EXPECT_NEAR(tree.Predict(row), 0.0f, 1e-6f);
}

TEST(TreeBuilderTest, MinSamplesLeafEnforced) {
  // 10 positives at x=1, 90 negatives at x=0; min_samples_leaf=20 forbids
  // isolating the 10.
  const int n = 100;
  DataMatrix x(n, 1);
  std::vector<float> grad(n), hess(n, 1.0f);
  std::vector<int> rows(n);
  for (int r = 0; r < n; ++r) {
    bool pos = r < 10;
    x.Set(r, 0, pos ? 1.0f : 0.0f);
    grad[static_cast<size_t>(r)] = pos ? -1.0f : 1.0f;
    rows[static_cast<size_t>(r)] = r;
  }
  QuantileBinner binner(x, 8);
  BinnedMatrix binned = binner.Transform(x);
  TreeParams params;
  params.min_samples_leaf = 20;
  TreeBuilder builder(binned, binner, params);
  RegressionTree tree = builder.Build(grad, hess, rows);
  EXPECT_EQ(tree.num_leaves(), 1);
}

// ---------- GBDT model ----------

GbdtConfig SmallConfig() {
  GbdtConfig cfg;
  cfg.num_trees = 40;
  cfg.max_leaves = 8;
  cfg.learning_rate = 0.2;
  cfg.min_samples_leaf = 10;
  cfg.subsample = 1.0;
  return cfg;
}

TEST(GbdtTest, LearnsLinearlySeparableData) {
  SetLogLevel(LogLevel::kWarn);
  Rng rng(7);
  const int n = 600;
  DataMatrix x(n, 3);
  std::vector<float> y(n);
  for (int r = 0; r < n; ++r) {
    float a = static_cast<float>(rng.Normal());
    float b = static_cast<float>(rng.Normal());
    float noise = static_cast<float>(rng.Normal());
    x.Set(r, 0, a);
    x.Set(r, 1, b);
    x.Set(r, 2, noise);  // irrelevant
    y[static_cast<size_t>(r)] = (a + b > 0) ? 1.0f : 0.0f;
  }
  GbdtModel model;
  GbdtTrainStats stats = model.Train(x, y, SmallConfig());
  std::vector<double> probs = model.PredictProbabilities(x);
  EXPECT_GT(eval::RocAuc(probs, y), 0.97);
  // Loss decreases monotonically-ish.
  EXPECT_LT(stats.train_logloss.back(), stats.train_logloss.front() * 0.5);
  SetLogLevel(LogLevel::kInfo);
}

TEST(GbdtTest, LearnsXorInteraction) {
  // XOR requires trees deeper than one split - the "high-order feature
  // interactions" the paper picked GBDT for.
  SetLogLevel(LogLevel::kWarn);
  Rng rng(8);
  const int n = 800;
  DataMatrix x(n, 2);
  std::vector<float> y(n);
  for (int r = 0; r < n; ++r) {
    float a = static_cast<float>(rng.Uniform(-1, 1));
    float b = static_cast<float>(rng.Uniform(-1, 1));
    x.Set(r, 0, a);
    x.Set(r, 1, b);
    y[static_cast<size_t>(r)] = (a * b > 0) ? 1.0f : 0.0f;
  }
  GbdtModel model;
  model.Train(x, y, SmallConfig());
  std::vector<double> probs = model.PredictProbabilities(x);
  EXPECT_GT(eval::RocAuc(probs, y), 0.95);
  SetLogLevel(LogLevel::kInfo);
}

TEST(GbdtTest, BaseScoreMatchesPrior) {
  SetLogLevel(LogLevel::kWarn);
  // With no informative features, predictions collapse to the base rate.
  const int n = 400;
  DataMatrix x(n, 1);
  std::vector<float> y(n);
  for (int r = 0; r < n; ++r) {
    x.Set(r, 0, 1.0f);  // constant
    y[static_cast<size_t>(r)] = (r % 5 == 0) ? 1.0f : 0.0f;  // 20% positive
  }
  GbdtModel model;
  GbdtConfig cfg = SmallConfig();
  cfg.num_trees = 5;
  model.Train(x, y, cfg);
  float row[1] = {1.0f};
  EXPECT_NEAR(model.PredictProbability(row), 0.2, 0.02);
  SetLogLevel(LogLevel::kInfo);
}

TEST(GbdtTest, FeatureImportanceConcentratesOnSignal) {
  SetLogLevel(LogLevel::kWarn);
  Rng rng(9);
  const int n = 600;
  DataMatrix x(n, 4);
  std::vector<float> y(n);
  for (int r = 0; r < n; ++r) {
    float signal = static_cast<float>(rng.Normal());
    x.Set(r, 0, static_cast<float>(rng.Normal()));
    x.Set(r, 1, signal);
    x.Set(r, 2, static_cast<float>(rng.Normal()));
    x.Set(r, 3, static_cast<float>(rng.Normal()));
    y[static_cast<size_t>(r)] = signal > 0 ? 1.0f : 0.0f;
  }
  GbdtModel model;
  model.Train(x, y, SmallConfig());
  std::vector<double> imp = model.FeatureImportance();
  ASSERT_EQ(imp.size(), 4u);
  EXPECT_GT(imp[1], 0.8);
  double sum = imp[0] + imp[1] + imp[2] + imp[3];
  EXPECT_NEAR(sum, 1.0, 1e-9);
  SetLogLevel(LogLevel::kInfo);
}

TEST(GbdtTest, DeterministicForSameSeed) {
  SetLogLevel(LogLevel::kWarn);
  Rng rng(10);
  const int n = 300;
  DataMatrix x(n, 2);
  std::vector<float> y(n);
  for (int r = 0; r < n; ++r) {
    x.Set(r, 0, static_cast<float>(rng.Normal()));
    x.Set(r, 1, static_cast<float>(rng.Normal()));
    y[static_cast<size_t>(r)] = x.At(r, 0) > 0 ? 1.0f : 0.0f;
  }
  GbdtConfig cfg = SmallConfig();
  cfg.subsample = 0.7;
  GbdtModel m1, m2;
  m1.Train(x, y, cfg);
  m2.Train(x, y, cfg);
  for (int r = 0; r < 10; ++r) {
    EXPECT_EQ(m1.PredictProbability(x.Row(r)),
              m2.PredictProbability(x.Row(r)));
  }
  SetLogLevel(LogLevel::kInfo);
}

TEST(GbdtTest, SubsamplingStillLearns) {
  SetLogLevel(LogLevel::kWarn);
  Rng rng(11);
  const int n = 600;
  DataMatrix x(n, 2);
  std::vector<float> y(n);
  for (int r = 0; r < n; ++r) {
    float a = static_cast<float>(rng.Normal());
    x.Set(r, 0, a);
    x.Set(r, 1, static_cast<float>(rng.Normal()));
    y[static_cast<size_t>(r)] = a > 0.3f ? 1.0f : 0.0f;
  }
  GbdtConfig cfg = SmallConfig();
  cfg.subsample = 0.5;
  GbdtModel model;
  model.Train(x, y, cfg);
  EXPECT_GT(eval::RocAuc(model.PredictProbabilities(x), y), 0.95);
  SetLogLevel(LogLevel::kInfo);
}

TEST(GbdtTest, SerializeRoundTripPreservesPredictions) {
  SetLogLevel(LogLevel::kWarn);
  std::string path = testing::TempDir() + "/evrec_gbdt_test.bin";
  Rng rng(12);
  const int n = 300;
  DataMatrix x(n, 2);
  std::vector<float> y(n);
  for (int r = 0; r < n; ++r) {
    x.Set(r, 0, static_cast<float>(rng.Normal()));
    x.Set(r, 1, static_cast<float>(rng.Normal()));
    y[static_cast<size_t>(r)] =
        x.At(r, 0) + x.At(r, 1) > 0 ? 1.0f : 0.0f;
  }
  GbdtModel model;
  GbdtConfig cfg = SmallConfig();
  cfg.num_trees = 15;
  model.Train(x, y, cfg);
  {
    BinaryWriter w(path);
    model.Serialize(w);
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(path);
  GbdtModel loaded = GbdtModel::Deserialize(r);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(loaded.num_trees(), 15);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(loaded.PredictProbability(x.Row(i)),
                     model.PredictProbability(x.Row(i)));
  }
  std::remove(path.c_str());
  SetLogLevel(LogLevel::kInfo);
}

// The paper's capacity: 200 trees x 12 leaves.
TEST(GbdtTest, PaperCapacityConfiguration) {
  SetLogLevel(LogLevel::kWarn);
  Rng rng(13);
  const int n = 500;
  DataMatrix x(n, 3);
  std::vector<float> y(n);
  for (int r = 0; r < n; ++r) {
    float a = static_cast<float>(rng.Normal());
    float b = static_cast<float>(rng.Normal());
    x.Set(r, 0, a);
    x.Set(r, 1, b);
    x.Set(r, 2, static_cast<float>(rng.Normal()));
    y[static_cast<size_t>(r)] = (std::sin(a) + 0.5f * b > 0) ? 1.0f : 0.0f;
  }
  GbdtConfig cfg;  // defaults: 200 trees, 12 leaves
  GbdtModel model;
  model.Train(x, y, cfg);
  EXPECT_EQ(model.num_trees(), 200);
  for (int t = 0; t < model.num_trees(); ++t) {
    EXPECT_LE(model.tree(t).num_leaves(), 12);
  }
  SetLogLevel(LogLevel::kInfo);
}

}  // namespace
}  // namespace gbdt
}  // namespace evrec
