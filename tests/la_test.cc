// Tests for evrec/la: vector kernels and the dense Matrix.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "evrec/la/matrix.h"
#include "evrec/la/vec_ops.h"
#include "evrec/util/rng.h"

namespace evrec {
namespace la {
namespace {

TEST(VecOpsTest, Axpy) {
  float x[3] = {1, 2, 3};
  float y[3] = {10, 20, 30};
  Axpy(2.0f, x, y, 3);
  EXPECT_FLOAT_EQ(y[0], 12);
  EXPECT_FLOAT_EQ(y[1], 24);
  EXPECT_FLOAT_EQ(y[2], 36);
}

TEST(VecOpsTest, DotAndNorm) {
  float x[3] = {3, 4, 0};
  EXPECT_FLOAT_EQ(DotF(x, x, 3), 25.0f);
  EXPECT_FLOAT_EQ(Norm(x, 3), 5.0f);
}

TEST(VecOpsTest, ScaleAddZero) {
  float x[2] = {2, -4};
  Scale(0.5f, x, 2);
  EXPECT_FLOAT_EQ(x[0], 1);
  EXPECT_FLOAT_EQ(x[1], -2);
  float a[2] = {1, 1}, out[2];
  Add(a, x, out, 2);
  EXPECT_FLOAT_EQ(out[0], 2);
  EXPECT_FLOAT_EQ(out[1], -1);
  Zero(out, 2);
  EXPECT_FLOAT_EQ(out[0], 0);
  EXPECT_FLOAT_EQ(out[1], 0);
}

TEST(VecOpsTest, TanhForwardBackwardConsistent) {
  float x[4] = {-2.0f, -0.1f, 0.0f, 1.3f};
  float y[4];
  TanhForward(x, y, 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(y[i], std::tanh(x[i]), 1e-6);
  }
  // Backward with dy = 1 gives the analytic derivative 1 - tanh^2.
  float dy[4] = {1, 1, 1, 1};
  float dx[4];
  TanhBackward(y, dy, dx, 4);
  for (int i = 0; i < 4; ++i) {
    double t = std::tanh(x[i]);
    EXPECT_NEAR(dx[i], 1.0 - t * t, 1e-6);
  }
}

TEST(MatrixTest, ShapeAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  m.At(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(m.At(1, 2), 5.0f);
  EXPECT_FLOAT_EQ(m.Row(1)[2], 5.0f);
}

TEST(MatrixTest, GemvKnownValues) {
  Matrix m(2, 3);
  // [[1 2 3],[4 5 6]] * [1 1 2]^T = [9, 21]
  float vals[6] = {1, 2, 3, 4, 5, 6};
  std::copy(vals, vals + 3, m.Row(0));
  std::copy(vals + 3, vals + 6, m.Row(1));
  float x[3] = {1, 1, 2};
  float out[2];
  m.Gemv(x, out);
  EXPECT_FLOAT_EQ(out[0], 9);
  EXPECT_FLOAT_EQ(out[1], 21);
}

TEST(MatrixTest, GemvTransposedAccumIsAdjointOfGemv) {
  // Adjoint identity: <Mx, y> == <x, M^T y> for random M, x, y.
  Rng rng(77);
  Matrix m(4, 6);
  m.XavierInit(rng);
  std::vector<float> x(6), y(4), mx(4), mty(6, 0.0f);
  for (auto& v : x) v = static_cast<float>(rng.Uniform(-1, 1));
  for (auto& v : y) v = static_cast<float>(rng.Uniform(-1, 1));
  m.Gemv(x.data(), mx.data());
  m.GemvTransposedAccum(y.data(), mty.data());
  double lhs = 0.0, rhs = 0.0;
  for (int i = 0; i < 4; ++i) lhs += static_cast<double>(mx[i]) * y[i];
  for (int i = 0; i < 6; ++i) rhs += static_cast<double>(x[i]) * mty[i];
  EXPECT_NEAR(lhs, rhs, 1e-4);
}

TEST(MatrixTest, AddOuterMatchesManual) {
  Matrix m(2, 2);
  float y[2] = {1, 2};
  float x[2] = {3, 4};
  m.AddOuter(0.5f, y, x);
  EXPECT_FLOAT_EQ(m.At(0, 0), 1.5f);
  EXPECT_FLOAT_EQ(m.At(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(m.At(1, 0), 3.0f);
  EXPECT_FLOAT_EQ(m.At(1, 1), 4.0f);
}

TEST(MatrixTest, AddScaledAndSetZero) {
  Matrix a(2, 2), b(2, 2);
  b.At(0, 0) = 2.0f;
  b.At(1, 1) = 4.0f;
  a.AddScaled(-0.5f, b);
  EXPECT_FLOAT_EQ(a.At(0, 0), -1.0f);
  EXPECT_FLOAT_EQ(a.At(1, 1), -2.0f);
  a.SetZero();
  EXPECT_FLOAT_EQ(a.At(0, 0), 0.0f);
}

TEST(MatrixTest, XavierInitWithinBound) {
  Rng rng(3);
  Matrix m(16, 16);
  m.XavierInit(rng);
  double bound = std::sqrt(6.0 / 32.0) + 1e-9;
  bool any_nonzero = false;
  for (int r = 0; r < 16; ++r) {
    for (int c = 0; c < 16; ++c) {
      EXPECT_LE(std::fabs(m.At(r, c)), bound);
      if (m.At(r, c) != 0.0f) any_nonzero = true;
    }
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(MatrixTest, FrobeniusNorm) {
  Matrix m(1, 2);
  m.At(0, 0) = 3.0f;
  m.At(0, 1) = 4.0f;
  EXPECT_NEAR(m.FrobeniusNorm(), 5.0, 1e-9);
}

TEST(MatrixTest, SerializeRoundTrip) {
  std::string path = testing::TempDir() + "/evrec_matrix_test.bin";
  Rng rng(5);
  Matrix m(3, 5);
  m.XavierInit(rng);
  {
    BinaryWriter w(path);
    m.Serialize(w);
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(path);
  Matrix loaded = Matrix::Deserialize(r);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(loaded.SameShape(m));
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 5; ++j) {
      EXPECT_FLOAT_EQ(loaded.At(i, j), m.At(i, j));
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace la
}  // namespace evrec
