// Tests for evrec/simnet dataset TSV export/import: round-trip fidelity,
// downstream-pipeline equivalence, and corruption handling.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sys/stat.h>

#include "evrec/baseline/feature_index.h"
#include "evrec/simnet/dataset_io.h"
#include "evrec/util/logging.h"

namespace evrec {
namespace simnet {
namespace {

class DatasetIoTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SetLogLevel(LogLevel::kWarn);
    dir_ = new std::string(testing::TempDir() + "/evrec_dataset_io");
    ::mkdir(dir_->c_str(), 0755);
    dataset_ = new SimnetDataset(GenerateDataset(TinySimnetConfig()));
    ASSERT_TRUE(ExportDataset(*dataset_, *dir_).ok());
  }
  static void TearDownTestSuite() {
    for (const char* f : {"users.tsv", "pages.tsv", "events.tsv",
                          "impressions.tsv", "feedback.tsv"}) {
      std::remove((*dir_ + "/" + f).c_str());
    }
    delete dataset_;
    delete dir_;
    SetLogLevel(LogLevel::kInfo);
  }
  static SimnetDataset* dataset_;
  static std::string* dir_;
};

SimnetDataset* DatasetIoTest::dataset_ = nullptr;
std::string* DatasetIoTest::dir_ = nullptr;

TEST_F(DatasetIoTest, RoundTripEntityCounts) {
  auto loaded = ImportDataset(*dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_users(), dataset_->num_users());
  EXPECT_EQ(loaded->num_events(), dataset_->num_events());
  EXPECT_EQ(loaded->world.pages.size(), dataset_->world.pages.size());
  EXPECT_EQ(loaded->rep_train.size(), dataset_->rep_train.size());
  EXPECT_EQ(loaded->combiner_train.size(), dataset_->combiner_train.size());
  EXPECT_EQ(loaded->eval.size(), dataset_->eval.size());
}

TEST_F(DatasetIoTest, RoundTripUserFields) {
  auto loaded = ImportDataset(*dir_);
  ASSERT_TRUE(loaded.ok());
  const User& a = dataset_->world.users[7];
  const User& b = loaded->world.users[7];
  EXPECT_EQ(a.city, b.city);
  EXPECT_EQ(a.age_bucket, b.age_bucket);
  EXPECT_EQ(a.gender, b.gender);
  EXPECT_EQ(a.friends, b.friends);
  EXPECT_EQ(a.pages, b.pages);
  EXPECT_EQ(a.profile_words, b.profile_words);
  ASSERT_EQ(a.interests.size(), b.interests.size());
  for (size_t k = 0; k < a.interests.size(); ++k) {
    EXPECT_NEAR(a.interests[k], b.interests[k], 1e-7);
  }
}

TEST_F(DatasetIoTest, RoundTripEventFields) {
  auto loaded = ImportDataset(*dir_);
  ASSERT_TRUE(loaded.ok());
  const Event& a = dataset_->events[3];
  const Event& b = loaded->events[3];
  EXPECT_EQ(a.host_user, b.host_user);
  EXPECT_EQ(a.category, b.category);
  EXPECT_EQ(a.category_name, b.category_name);
  EXPECT_NEAR(a.create_day, b.create_day, 1e-6);
  EXPECT_NEAR(a.start_day, b.start_day, 1e-6);
  EXPECT_EQ(a.title_words, b.title_words);
  EXPECT_EQ(a.body_words, b.body_words);
}

TEST_F(DatasetIoTest, RoundTripImpressionsAndSplits) {
  auto loaded = ImportDataset(*dir_);
  ASSERT_TRUE(loaded.ok());
  for (size_t i = 0; i < loaded->eval.size(); ++i) {
    EXPECT_EQ(loaded->eval[i].user, dataset_->eval[i].user);
    EXPECT_EQ(loaded->eval[i].event, dataset_->eval[i].event);
    EXPECT_EQ(loaded->eval[i].day, dataset_->eval[i].day);
    EXPECT_EQ(loaded->eval[i].label, dataset_->eval[i].label);
  }
  // Recovered split boundaries enclose the data.
  EXPECT_LE(loaded->config.rep_train_days,
            dataset_->config.rep_train_days);
  EXPECT_LE(loaded->config.combiner_train_days,
            dataset_->config.combiner_train_days);
}

TEST_F(DatasetIoTest, RoundTripFeedbackSupportsFeatureIndex) {
  auto loaded = ImportDataset(*dir_);
  ASSERT_TRUE(loaded.ok());
  // Feature queries agree between original and re-imported datasets.
  baseline::FeatureIndex original(*dataset_);
  baseline::FeatureIndex reimported(*loaded);
  for (int e = 0; e < 20; ++e) {
    EXPECT_EQ(original.AttendeesBefore(e, 40),
              reimported.AttendeesBefore(e, 40));
    EXPECT_EQ(original.InterestedBefore(e, 40),
              reimported.InterestedBefore(e, 40));
  }
  for (int u = 0; u < 20; ++u) {
    EXPECT_EQ(original.UserJoinCountBefore(u, 40),
              reimported.UserJoinCountBefore(u, 40));
  }
}

TEST_F(DatasetIoTest, ColdStartFractionPreserved) {
  auto loaded = ImportDataset(*dir_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_NEAR(ColdStartEventFraction(*loaded),
              ColdStartEventFraction(*dataset_), 1e-12);
}

TEST(DatasetIoErrorTest, MissingDirectoryIsIoError) {
  auto loaded = ImportDataset("/nonexistent/evrec/dir");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(DatasetIoErrorTest, MalformedRowIsCorruption) {
  std::string dir = testing::TempDir() + "/evrec_dataset_io_bad";
  ::mkdir(dir.c_str(), 0755);
  // users.tsv with wrong field count; other files empty.
  {
    std::ofstream f(dir + "/users.tsv");
    f << "0\t1\n";
  }
  for (const char* name :
       {"pages.tsv", "events.tsv", "impressions.tsv", "feedback.tsv"}) {
    std::ofstream f(dir + "/" + name);
  }
  auto loaded = ImportDataset(dir);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  for (const char* name : {"users.tsv", "pages.tsv", "events.tsv",
                           "impressions.tsv", "feedback.tsv"}) {
    std::remove((dir + "/" + name).c_str());
  }
}

TEST(DatasetIoErrorTest, OutOfRangeFeedbackIdIsCorruption) {
  std::string dir = testing::TempDir() + "/evrec_dataset_io_range";
  ::mkdir(dir.c_str(), 0755);
  {
    std::ofstream f(dir + "/users.tsv");
    f << "0\t0\t0\t0\t0\t0.5 0.5\t\t\tword\n";
  }
  {
    std::ofstream f(dir + "/pages.tsv");
  }
  {
    std::ofstream f(dir + "/events.tsv");
    f << "0\t0\t0\t0\t0\t0\tcat\t0\t1\t1 0\tt\tb\n";
  }
  {
    std::ofstream f(dir + "/impressions.tsv");
    f << "eval\t0\t0\t5\t1\n";
  }
  {
    std::ofstream f(dir + "/feedback.tsv");
    f << "join\t9\t0\t1\n";  // user 9 does not exist
  }
  auto loaded = ImportDataset(dir);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  for (const char* name : {"users.tsv", "pages.tsv", "events.tsv",
                           "impressions.tsv", "feedback.tsv"}) {
    std::remove((dir + "/" + name).c_str());
  }
}

}  // namespace
}  // namespace simnet
}  // namespace evrec
