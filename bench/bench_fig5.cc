// Reproduces FIGURE 5 (paper §5.2): precision/recall curves for the
// different ways of integrating representation model outputs into the
// combiner. Prints a sampled recall grid per configuration and writes the
// full curves to fig5_pr_curves.csv for plotting.
//
// Expected shape: the "+rep" curves dominate the baseline curve across the
// high-recall region; the rep-only curve lies below the baseline; adding
// the similarity score on top of the vectors changes little.

#include <cstdio>

#include "bench/common/bench_profile.h"
#include "evrec/eval/table_printer.h"

int main() {
  using namespace evrec;
  bench::PrintHeader(
      "FIGURE 5 - P/R curves for integration settings (sampled)");

  auto pipeline = bench::MakeTrainedPipeline(bench::BenchProfile());

  struct Config {
    const char* name;
    baseline::FeatureConfig features;
  };
  std::vector<Config> configs = {
      {"rep_only", {false, false, true, false}},
      {"baseline", {true, true, false, false}},
      {"baseline+rep", {true, true, true, false}},
      {"baseline+rep+score", {true, true, true, true}},
  };

  const int kGrid = 20;
  std::vector<std::vector<eval::PrPoint>> sampled;
  std::vector<std::string> names;
  for (const auto& c : configs) {
    pipeline::EvalResult r = pipeline->EvaluateFeatureConfig(c.features);
    bench::WriteCurveCsv(std::string("fig5_curve_") + c.name + ".csv",
                         c.name, r.curve);
    sampled.push_back(eval::SampleCurve(r.curve, kGrid));
    names.push_back(c.name);
  }

  // Print precision at each recall grid point, one column per config.
  std::vector<std::string> header = {"recall"};
  for (const auto& n : names) header.push_back(n);
  eval::TablePrinter table(header);
  for (int g = 0; g < kGrid; ++g) {
    std::vector<std::string> row = {
        eval::Metric3(sampled[0][static_cast<size_t>(g)].recall)};
    for (size_t c = 0; c < sampled.size(); ++c) {
      row.push_back(
          eval::Metric3(sampled[c][static_cast<size_t>(g)].precision));
    }
    table.AddRow(row);
  }
  table.Print();

  // Dominance checks in the paper's emphasized high-recall region.
  int rep_dominates = 0, grid_points = 0;
  for (int g = kGrid / 2; g < kGrid; ++g) {
    ++grid_points;
    if (sampled[2][static_cast<size_t>(g)].precision >=
        sampled[1][static_cast<size_t>(g)].precision) {
      ++rep_dominates;
    }
  }
  std::printf(
      "\nshape: baseline+rep dominates baseline on %d/%d high-recall grid "
      "points\n",
      rep_dominates, grid_points);
  return 0;
}
