// Reproduces the paper's §3.2.1 claim (no figure; "data not shown"):
// the Siamese-pretrained event tower — trained only on (title, body)
// pairs, with zero user feedback — "is already an excellent event-only
// semantic model" that "improves the semantic-search in events noticeably
// over using n-gram based text model".
//
// Two protocols against a word-level TF-IDF baseline (the "n-gram based
// text model"):
//
//  A. Standard related-event retrieval: rank all events by similarity to a
//     query event, measure same-category precision@5. On the synthetic
//     substrate same-topic events share many exact words, so LEXICAL
//     retrieval saturates here — both methods are expected near ceiling
//     (reported for completeness).
//
//  B. Zero-lexical-overlap retrieval — the paper's actual point ("similar
//     in semantic topics but do not necessarily overlap much in the word
//     space"): query with an event's TITLE against candidate BODIES that
//     share NO word with the title. Word-level TF-IDF has no signal at all
//     (all scores zero); the Siamese trigram representation still matches
//     morphology/topic. Same-category precision@5 within the restricted
//     pool, versus the pool's base rate.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "bench/common/bench_profile.h"
#include "evrec/model/siamese.h"
#include "evrec/simnet/docs.h"
#include "evrec/util/math_util.h"

namespace {

using namespace evrec;

// Sparse word-level TF-IDF vector over a corpus-derived vocabulary.
struct WordStats {
  std::unordered_map<std::string, int> df;
  int num_docs = 0;
};

std::unordered_map<std::string, double> TfidfVector(
    const std::vector<std::string>& words, const WordStats& stats) {
  std::unordered_map<std::string, double> tf;
  for (const auto& w : words) tf[w] += 1.0;
  double norm = 0.0;
  for (auto& [w, count] : tf) {
    auto it = stats.df.find(w);
    int df = it == stats.df.end() ? 0 : it->second;
    double idf = std::log((1.0 + stats.num_docs) / (1.0 + df));
    count *= idf;
    norm += count * count;
  }
  norm = std::sqrt(std::max(norm, 1e-12));
  for (auto& [w, count] : tf) count /= norm;
  return tf;
}

double SparseCosine(const std::unordered_map<std::string, double>& a,
                    const std::unordered_map<std::string, double>& b) {
  const auto& small = a.size() < b.size() ? a : b;
  const auto& large = a.size() < b.size() ? b : a;
  double dot = 0.0;
  for (const auto& [w, v] : small) {
    auto it = large.find(w);
    if (it != large.end()) dot += v * it->second;
  }
  return dot;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "SIAMESE INIT (paper 3.2.1) - related-event search vs n-gram model");

  pipeline::PipelineConfig cfg = bench::BenchProfile();
  pipeline::TwoStagePipeline pipeline(cfg);
  pipeline.Prepare();
  const auto& dataset = pipeline.dataset();
  const auto& encoders = pipeline.encoders();

  // Build and pre-train a standalone event tower (Siamese only — no joint
  // training, no user feedback).
  model::Tower tower({encoders.EventTextVocab()}, {cfg.rep.text_windows},
                     cfg.rep.embedding_dim, cfg.rep.module_out_dim,
                     cfg.rep.hidden_dim, cfg.rep.rep_dim, cfg.rep.pool,
                     cfg.rep.residual_bypass);
  Rng rng(cfg.rep.seed, 41);
  tower.RandomInit(rng, cfg.rep.embedding_init_scale);
  tower.CalibrateNormalizer(pipeline.rep_data().event_inputs);

  std::vector<text::EncodedText> titles, bodies;
  for (const auto& event : dataset.events) {
    if (event.create_day >=
        static_cast<double>(cfg.simnet.rep_train_days)) {
      continue;
    }
    titles.push_back(
        encoders.EncodeEventTitle(event, cfg.max_event_tokens));
    bodies.push_back(encoders.EncodeEventBody(event, cfg.max_event_tokens));
  }
  model::SiameseConfig scfg = cfg.siamese;
  scfg.max_epochs = 12;
  Rng siamese_rng(cfg.rep.seed, 43);
  model::SiameseStats stats =
      model::SiamesePretrain(&tower, titles, bodies, scfg, siamese_rng);
  std::printf("siamese pre-training: %d epochs, loss %.3f -> %.3f\n",
              stats.epochs_run, stats.train_loss.front(),
              stats.train_loss.back());

  // Representations + word TF-IDF stats for every event.
  const size_t n = dataset.events.size();
  std::vector<std::vector<float>> full_reps(n), title_reps(n), body_reps(n);
  std::vector<std::vector<std::string>> full_words(n), title_words(n),
      body_words(n);
  WordStats stats_full;
  for (size_t e = 0; e < n; ++e) {
    const auto& event = dataset.events[e];
    full_reps[e] = tower.Represent(pipeline.rep_data().event_inputs[e]);
    title_reps[e] = tower.Represent(
        {encoders.EncodeEventTitle(event, cfg.max_event_tokens)});
    body_reps[e] = tower.Represent(
        {encoders.EncodeEventBody(event, cfg.max_event_tokens)});
    full_words[e] = simnet::EventTextWords(event);
    title_words[e] = event.title_words;
    body_words[e] = event.body_words;
    std::unordered_set<std::string> seen(full_words[e].begin(),
                                         full_words[e].end());
    for (const auto& w : seen) ++stats_full.df[w];
    ++stats_full.num_docs;
  }
  std::vector<std::unordered_map<std::string, double>> tfidf_full(n),
      tfidf_body(n);
  for (size_t e = 0; e < n; ++e) {
    tfidf_full[e] = TfidfVector(full_words[e], stats_full);
    tfidf_body[e] = TfidfVector(body_words[e], stats_full);
  }

  const int kK = 5;
  const int rep_dim = static_cast<int>(full_reps[0].size());
  Rng qrng(99);

  // ---- protocol A: standard retrieval over all events ----
  {
    const int kQueries = 150;
    double siamese_p = 0.0, ngram_p = 0.0;
    for (int q = 0; q < kQueries; ++q) {
      int query = qrng.UniformInt(0, static_cast<int>(n) - 1);
      int category = dataset.events[static_cast<size_t>(query)].category;
      auto p_at_k = [&](auto score) {
        std::vector<std::pair<double, int>> scored;
        for (size_t e = 0; e < n; ++e) {
          if (static_cast<int>(e) == query) continue;
          scored.emplace_back(score(e), static_cast<int>(e));
        }
        std::partial_sort(scored.begin(), scored.begin() + kK, scored.end(),
                          std::greater<>());
        int hits = 0;
        for (int k = 0; k < kK; ++k) {
          if (dataset.events[static_cast<size_t>(
                  scored[static_cast<size_t>(k)].second)].category ==
              category) {
            ++hits;
          }
        }
        return static_cast<double>(hits) / kK;
      };
      siamese_p += p_at_k([&](size_t e) {
        return CosineSimilarity(full_reps[static_cast<size_t>(query)].data(),
                                full_reps[e].data(), rep_dim);
      });
      ngram_p += p_at_k([&](size_t e) {
        return SparseCosine(tfidf_full[static_cast<size_t>(query)],
                            tfidf_full[e]);
      });
    }
    std::printf("\nA. standard retrieval (lexical overlap available), "
                "precision@%d over %d queries:\n",
                kK, 150);
    std::printf("   siamese %.3f | word tf-idf %.3f | chance %.3f\n",
                siamese_p / 150, ngram_p / 150,
                1.0 / cfg.simnet.num_topics);
    std::printf("   note: the synthetic substrate reuses topical words, so"
                " lexical retrieval saturates here;\n"
                "   the discriminating protocol is B.\n");
  }

  // ---- protocol B: title -> bodies sharing NO word with the title ----
  {
    double siamese_p = 0.0, ngram_p = 0.0, base_rate = 0.0;
    int used_queries = 0;
    for (size_t query = 0; query < n && used_queries < 200; ++query) {
      const auto& qwords = title_words[query];
      std::unordered_set<std::string> qset(qwords.begin(), qwords.end());
      int category = dataset.events[query].category;

      std::vector<int> pool;
      int pool_positives = 0;
      for (size_t e = 0; e < n; ++e) {
        if (e == query) continue;
        bool overlap = false;
        for (const auto& w : body_words[e]) {
          if (qset.count(w) != 0) {
            overlap = true;
            break;
          }
        }
        if (overlap) continue;
        pool.push_back(static_cast<int>(e));
        if (dataset.events[e].category == category) ++pool_positives;
      }
      if (static_cast<int>(pool.size()) < 20 || pool_positives < 1) continue;
      ++used_queries;
      base_rate += static_cast<double>(pool_positives) / pool.size();

      auto p_at_k = [&](auto score) {
        std::vector<std::pair<double, int>> scored;
        for (int e : pool) {
          scored.emplace_back(score(static_cast<size_t>(e)), e);
        }
        int k = std::min<int>(kK, static_cast<int>(scored.size()));
        std::partial_sort(scored.begin(), scored.begin() + k, scored.end(),
                          std::greater<>());
        int hits = 0;
        for (int i = 0; i < k; ++i) {
          if (dataset.events[static_cast<size_t>(
                  scored[static_cast<size_t>(i)].second)].category ==
              category) {
            ++hits;
          }
        }
        return static_cast<double>(hits) / k;
      };
      siamese_p += p_at_k([&](size_t e) {
        return CosineSimilarity(title_reps[query].data(),
                                body_reps[e].data(), rep_dim);
      });
      ngram_p += p_at_k([&](size_t e) {
        return SparseCosine(TfidfVector(qwords, stats_full), tfidf_body[e]);
      });
    }
    siamese_p /= std::max(1, used_queries);
    ngram_p /= std::max(1, used_queries);
    base_rate /= std::max(1, used_queries);

    std::printf("\nB. zero-word-overlap retrieval (title -> disjoint "
                "bodies), precision@%d over %d queries:\n",
                kK, used_queries);
    std::printf("   siamese representation : %.3f\n", siamese_p);
    std::printf("   word tf-idf (n-gram)   : %.3f\n", ngram_p);
    std::printf("   pool base rate         : %.3f\n", base_rate);
    std::printf("shape: siamese beats the n-gram text model when word "
                "overlap is absent : %s\n",
                siamese_p > ngram_p + 0.05 ? "OK" : "MISMATCH");
  }
  return 0;
}
