// Reproduces FIGURE 6 (paper §5.2): precision/recall curves for the
// feature-set combinations of Table 2. Prints a sampled recall grid and
// writes full curves to fig6_curve_*.csv.
//
// Expected shape: base < base+CF < base+rep ~= all, with the rep-feature
// gap far larger than the CF gap.

#include <cstdio>

#include "bench/common/bench_profile.h"
#include "evrec/eval/table_printer.h"

int main() {
  using namespace evrec;
  bench::PrintHeader(
      "FIGURE 6 - P/R curves for feature-set combinations (sampled)");

  auto pipeline = bench::MakeTrainedPipeline(bench::BenchProfile());

  struct Config {
    const char* name;
    baseline::FeatureConfig features;
  };
  std::vector<Config> configs = {
      {"base_no_cf", {true, false, false, false}},
      {"base_cf", {true, true, false, false}},
      {"base_rep", {true, false, true, false}},
      {"all_features", {true, true, true, false}},
  };

  const int kGrid = 20;
  std::vector<std::vector<eval::PrPoint>> sampled;
  std::vector<std::string> names;
  for (const auto& c : configs) {
    pipeline::EvalResult r = pipeline->EvaluateFeatureConfig(c.features);
    bench::WriteCurveCsv(std::string("fig6_curve_") + c.name + ".csv",
                         c.name, r.curve);
    sampled.push_back(eval::SampleCurve(r.curve, kGrid));
    names.push_back(c.name);
  }

  std::vector<std::string> header = {"recall"};
  for (const auto& n : names) header.push_back(n);
  eval::TablePrinter table(header);
  for (int g = 0; g < kGrid; ++g) {
    std::vector<std::string> row = {
        eval::Metric3(sampled[0][static_cast<size_t>(g)].recall)};
    for (size_t c = 0; c < sampled.size(); ++c) {
      row.push_back(
          eval::Metric3(sampled[c][static_cast<size_t>(g)].precision));
    }
    table.AddRow(row);
  }
  table.Print();

  // Average precision gap over the grid: rep gap vs CF gap.
  double cf_gap = 0.0, rep_gap = 0.0;
  for (int g = 0; g < kGrid; ++g) {
    cf_gap += sampled[1][static_cast<size_t>(g)].precision -
              sampled[0][static_cast<size_t>(g)].precision;
    rep_gap += sampled[2][static_cast<size_t>(g)].precision -
               sampled[0][static_cast<size_t>(g)].precision;
  }
  cf_gap /= kGrid;
  rep_gap /= kGrid;
  std::printf("\nmean precision gap over base: CF %+.3f, rep %+.3f\n",
              cf_gap, rep_gap);
  std::printf("shape: rep gap exceeds CF gap : %s\n",
              rep_gap > cf_gap ? "OK" : "MISMATCH");
  return 0;
}
