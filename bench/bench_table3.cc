// Reproduces TABLE 3 (paper §5.3): similar events discovered from a seed
// event using the event representation model alone. The paper sets a high
// cosine threshold (0.95) and finds "event pairs that are similar in
// semantic topics but do not necessarily overlap much in the word space".
//
// We take a seed event per category, rank all other events by event-to-
// event representation cosine, and report the top-3 with (a) their
// category and (b) their title-word Jaccard overlap with the seed —
// demonstrating topic match despite low word overlap.

#include <algorithm>
#include <cstdio>
#include <set>

#include "bench/common/bench_profile.h"
#include "evrec/eval/table_printer.h"
#include "evrec/simnet/docs.h"
#include "evrec/util/math_util.h"

namespace {

double WordJaccard(const std::vector<std::string>& a,
                   const std::vector<std::string>& b) {
  std::set<std::string> sa(a.begin(), a.end());
  std::set<std::string> sb(b.begin(), b.end());
  int inter = 0;
  for (const auto& w : sa) inter += sb.count(w) != 0 ? 1 : 0;
  size_t uni = sa.size() + sb.size() - static_cast<size_t>(inter);
  return uni == 0 ? 0.0 : static_cast<double>(inter) / uni;
}

std::string JoinWords(const std::vector<std::string>& words) {
  std::string out;
  for (const auto& w : words) {
    if (!out.empty()) out += ' ';
    out += w;
  }
  return out;
}

}  // namespace

int main() {
  using namespace evrec;
  bench::PrintHeader("TABLE 3 - similar events discovered by a seed event");

  auto pipeline = bench::MakeTrainedPipeline(bench::BenchProfile());
  const auto& dataset = pipeline->dataset();
  const auto& reps = pipeline->event_reps();
  const int rep_dim = static_cast<int>(reps[0].size());

  int same_category_hits = 0, total_neighbours = 0;
  double total_word_overlap = 0.0;

  // One seed per of the first three categories (paper shows one, food).
  for (int category = 0; category < 3; ++category) {
    int seed = -1;
    for (const auto& e : dataset.events) {
      if (e.category == category) {
        seed = e.id;
        break;
      }
    }
    if (seed < 0) continue;
    const auto& seed_event = dataset.events[static_cast<size_t>(seed)];

    std::vector<std::pair<double, int>> scored;
    for (const auto& e : dataset.events) {
      if (e.id == seed) continue;
      double sim = CosineSimilarity(reps[static_cast<size_t>(seed)].data(),
                                    reps[static_cast<size_t>(e.id)].data(),
                                    rep_dim);
      scored.emplace_back(sim, e.id);
    }
    std::sort(scored.rbegin(), scored.rend());

    std::printf("Seed [%s]: %s\n", seed_event.category_name.c_str(),
                JoinWords(seed_event.title_words).c_str());
    eval::TablePrinter table(
        {"cosine", "category", "title", "word-jaccard"});
    for (int k = 0; k < 3 && k < static_cast<int>(scored.size()); ++k) {
      const auto& e =
          dataset.events[static_cast<size_t>(scored[static_cast<size_t>(k)]
                                                 .second)];
      double overlap = WordJaccard(simnet::EventTextWords(seed_event),
                                   simnet::EventTextWords(e));
      table.AddRow({eval::Metric3(scored[static_cast<size_t>(k)].first),
                    e.category_name, JoinWords(e.title_words),
                    eval::Metric3(overlap)});
      ++total_neighbours;
      if (e.category == seed_event.category) ++same_category_hits;
      total_word_overlap += overlap;
    }
    table.Print();
    std::printf("\n");
  }

  double purity = total_neighbours == 0
                      ? 0.0
                      : static_cast<double>(same_category_hits) /
                            total_neighbours;
  std::printf("neighbour same-category purity: %.2f (chance ~%.2f)\n",
              purity,
              1.0 / pipeline->config().simnet.num_topics);
  std::printf("mean word-space overlap: %.3f (low = semantic, not lexical,"
              " match)\n",
              total_word_overlap / std::max(1, total_neighbours));
  std::printf("shape: neighbours match seed topic well above chance : %s\n",
              purity > 3.0 / pipeline->config().simnet.num_topics
                  ? "OK"
                  : "MISMATCH");
  return 0;
}
