// Extension experiments beyond the paper's reported results, covering the
// directions the paper itself sketches:
//
//  (1) §3.2.1 "ranking loss": pairwise hinge ranking vs the pointwise
//      Eq. 1 loss, compared by eval-week cosine AUC.
//  (2) Conclusion / future work: multi-feedback training — adding the
//      weak "interested" signal as down-weighted positive pairs.
//  (3) §5.2 remark on combiner choice: a logistic-regression combiner
//      needs the summary similarity SCORE (it cannot discover per-latent-
//      dimension interactions), while the GBDT is largely indifferent.
//
// Runs at the reduced ablation scale.

#include <cstdio>

#include "bench/common/bench_profile.h"
#include "evrec/eval/table_printer.h"
#include "evrec/gbdt/logistic_regression.h"
#include "evrec/model/ranking_trainer.h"
#include "evrec/util/math_util.h"

namespace {

using namespace evrec;

pipeline::PipelineConfig ExtensionProfile() {
  pipeline::PipelineConfig cfg = bench::BenchProfile();
  cfg.simnet.num_users = 500;
  cfg.simnet.num_pages = 160;
  cfg.simnet.num_events = 700;
  cfg.rep.max_epochs = 6;
  cfg.rep.early_stop_patience = 6;
  cfg.max_user_tokens = 80;
  cfg.max_event_tokens = 96;
  return cfg;
}

double CosineEvalAuc(const pipeline::TwoStagePipeline& p,
                     const std::vector<std::vector<float>>& ur,
                     const std::vector<std::vector<float>>& er) {
  std::vector<double> scores;
  std::vector<float> labels;
  for (const auto& i : p.dataset().eval) {
    scores.push_back(CosineSimilarity(
        ur[static_cast<size_t>(i.user)].data(),
        er[static_cast<size_t>(i.event)].data(),
        static_cast<int>(ur[static_cast<size_t>(i.user)].size())));
    labels.push_back(i.label);
  }
  return eval::RocAuc(scores, labels);
}

}  // namespace

int main() {
  bench::PrintHeader("EXTENSIONS - ranking loss, multi-feedback, combiners");

  // ---- (1) pointwise vs ranking loss ----
  {
    pipeline::PipelineConfig cfg = ExtensionProfile();
    pipeline::TwoStagePipeline p(cfg);
    p.Prepare();
    p.TrainRepresentation();  // pointwise Eq. 1 (cached)
    p.ComputeRepVectors();
    double pointwise_auc = CosineEvalAuc(p, p.user_reps(), p.event_reps());

    // Ranking-trained model from the same initialization.
    model::JointModel ranked(cfg.rep, p.encoders().UserTextVocab(),
                             p.encoders().UserCategoricalVocab(),
                             p.encoders().EventTextVocab());
    Rng rng(cfg.rep.seed, 5);
    ranked.RandomInit(rng);
    ranked.CalibrateNormalizers(p.rep_data());
    model::RankingConfig rcfg;
    rcfg.max_epochs = cfg.rep.max_epochs;
    rcfg.contrasts_per_positive = 2;
    model::RankingTrainer trainer(&ranked);
    Rng train_rng(cfg.rep.seed, 7);
    trainer.Train(p.rep_data(), rcfg, train_rng);
    std::vector<std::vector<float>> ur, er;
    for (const auto& u : p.rep_data().user_inputs) {
      ur.push_back(ranked.UserVector(u));
    }
    for (const auto& e : p.rep_data().event_inputs) {
      er.push_back(ranked.EventVector(e));
    }
    double ranking_auc = CosineEvalAuc(p, ur, er);

    std::printf("(1) loss function (eval-week cosine AUC)\n");
    eval::TablePrinter table({"loss", "eval AUC"});
    table.AddRow({"pointwise Eq. 1 (paper)", eval::Metric3(pointwise_auc)});
    table.AddRow({"pairwise ranking hinge", eval::Metric3(ranking_auc)});
    table.Print();
  }

  // ---- (2) multi-feedback training ----
  {
    std::printf("\n(2) multi-feedback training (\"interested\" as weak "
                "positives)\n");
    eval::TablePrinter table({"interested weight", "eval cosine AUC"});
    for (float w : {0.0f, 0.3f, 0.6f}) {
      pipeline::PipelineConfig cfg = ExtensionProfile();
      cfg.interested_pair_weight = w;
      pipeline::TwoStagePipeline p(cfg);
      p.Prepare();
      p.TrainRepresentation();
      p.ComputeRepVectors();
      table.AddRow({eval::Metric3(w),
                    eval::Metric3(CosineEvalAuc(p, p.user_reps(),
                                                p.event_reps()))});
    }
    table.Print();
  }

  // ---- (3) combiner model: GBDT vs logistic regression ----
  {
    pipeline::PipelineConfig cfg = ExtensionProfile();
    pipeline::TwoStagePipeline p(cfg);
    p.Prepare();
    p.TrainRepresentation();
    p.ComputeRepVectors();
    const auto& ds = p.dataset();

    baseline::FeatureAssembler assembler(p.feature_index(), &p.user_reps(),
                                         &p.event_reps());
    auto run_lr = [&](const baseline::FeatureConfig& fc) {
      gbdt::DataMatrix train_x, eval_x;
      std::vector<float> train_y, eval_y;
      assembler.Assemble(ds.combiner_train, fc, &train_x, &train_y);
      assembler.Assemble(ds.eval, fc, &eval_x, &eval_y);
      gbdt::LogisticRegression lr;
      lr.Train(train_x, train_y, gbdt::LogisticRegressionConfig{});
      return eval::RocAuc(lr.PredictProbabilities(eval_x), eval_y);
    };

    baseline::FeatureConfig vectors_cfg;  // base+cf+vectors
    vectors_cfg.rep_vectors = true;
    baseline::FeatureConfig score_cfg;    // base+cf+score only
    score_cfg.rep_score = true;

    double lr_vectors = run_lr(vectors_cfg);
    double lr_score = run_lr(score_cfg);
    double gbdt_vectors = p.EvaluateFeatureConfig(vectors_cfg).auc;
    double gbdt_score = p.EvaluateFeatureConfig(score_cfg).auc;

    std::printf("\n(3) combiner model vs rep-feature integration "
                "(eval AUC)\n");
    eval::TablePrinter table(
        {"combiner", "base+cf+VECTORS", "base+cf+SCORE"});
    table.AddRow({"GBDT 200x12 (paper)", eval::Metric3(gbdt_vectors),
                  eval::Metric3(gbdt_score)});
    table.AddRow({"logistic regression", eval::Metric3(lr_vectors),
                  eval::Metric3(lr_score)});
    table.Print();
    std::printf("shape: LR needs the summary score more than GBDT does : "
                "%s\n",
                (lr_score - lr_vectors) > (gbdt_score - gbdt_vectors)
                    ? "OK"
                    : "MISMATCH");
  }
  return 0;
}
