// Reproduces FIGURE 7 (paper §5.3): top words spotted by the event
// representation model. For a short, a medium, and a long event text, we
// trace every pooling-layer max back to its window and credit the covered
// words (1/d each); the top-5 words per convolution window size are
// printed with subscripts listing the window sizes that ranked them top,
// exactly like the paper's figure.
//
// Expected shape: informative topical words (and the category label)
// accumulate the credit; common/stop-style words do not.

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "bench/common/bench_profile.h"
#include "evrec/model/attribution.h"
#include "evrec/simnet/docs.h"

int main() {
  using namespace evrec;
  bench::PrintHeader("FIGURE 7 - top words spotted by the event model");

  auto pipeline = bench::MakeTrainedPipeline(bench::BenchProfile());
  const auto& dataset = pipeline->dataset();
  const auto& tower = pipeline->rep_model().event_tower();
  const auto& bank = tower.bank(0);

  // Pick short / medium / long event texts.
  int short_event = -1, medium_event = -1, long_event = -1;
  for (const auto& e : dataset.events) {
    size_t len = simnet::EventTextWords(e).size();
    if (short_event < 0 && len <= 25) short_event = e.id;
    if (medium_event < 0 && len > 35 && len <= 50) medium_event = e.id;
    if (long_event < 0 && len > 60) long_event = e.id;
  }

  int topical_top_words = 0, total_top_words = 0;
  for (auto [label, event_id] :
       {std::pair<const char*, int>{"Short", short_event},
        {"Medium", medium_event}, {"Long", long_event}}) {
    if (event_id < 0) continue;
    const auto& event = dataset.events[static_cast<size_t>(event_id)];
    std::vector<std::string> words = simnet::EventTextWords(event);
    text::EncodedText encoded =
        pipeline->encoders().event_text->Encode(words);

    auto attributions = model::AttributeTopWords(bank, encoded);

    // word -> set of window sizes that rank it top-5.
    std::map<int, std::set<int>> top_windows;
    for (const auto& attr : attributions) {
      for (size_t i = 0; i < attr.ranked_words.size() && i < 5; ++i) {
        top_windows[attr.ranked_words[i].word_index].insert(
            attr.window_size);
      }
    }

    std::printf("--- %s event (id=%d, category=%s, %zu words) ---\n", label,
                event_id, event.category_name.c_str(), words.size());
    std::string rendered;
    for (size_t w = 0; w < words.size(); ++w) {
      auto it = top_windows.find(static_cast<int>(w));
      if (it != top_windows.end()) {
        rendered += "**" + words[w] + "**_{";
        bool first = true;
        for (int d : it->second) {
          if (!first) rendered += ",";
          rendered += std::to_string(d);
          first = false;
        }
        rendered += "} ";
      } else {
        rendered += words[w] + " ";
      }
    }
    std::printf("%s\n\n", rendered.c_str());

    // Shape statistic: are the top words topical (from the event-side
    // topical vocabulary) rather than common words? Common words are built
    // purely from common syllables and never match a topic name's prefix;
    // as a robust proxy we check that a top word shares a trigram with the
    // category label or appears at least twice in the document's topic.
    for (const auto& [word_index, windows] : top_windows) {
      (void)windows;
      ++total_top_words;
      const std::string& word = words[static_cast<size_t>(word_index)];
      // Topical words are >= 4 chars (2-3 syllables); common words are
      // often 1 syllable. Use length + repeated-document-occurrence proxy.
      int occurrences = static_cast<int>(
          std::count(words.begin(), words.end(), word));
      if (word.size() >= 4 || occurrences > 1) ++topical_top_words;
    }
  }

  std::printf("top words that look topical: %d/%d\n", topical_top_words,
              total_top_words);
  std::printf("shape: top-5 words are informative content words : %s\n",
              (total_top_words > 0 &&
               topical_top_words * 10 >= total_top_words * 7)
                  ? "OK"
                  : "MISMATCH");
  return 0;
}
