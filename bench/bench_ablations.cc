// Ablation benches for the design choices DESIGN.md calls out. These are
// OUR experiments (the paper reports only its final design), run at a
// reduced scale so the whole sweep stays tractable on one core:
//
//   (a) pooling: log-sum-exp (paper) vs max vs mean
//   (b) residual bypass into the representation layer: on (paper) vs off
//   (c) convolution window sets: {1} vs {1,3} vs {1,3,5} (paper)
//   (d) theta_r sensitivity (paper: "training is not very sensitive")
//   (e) semantic baselines: LDA / PLSA topic-similarity features vs the
//       CNN representation features in the combiner (paper §1-2 argument)
//   (f) transiency sweep: CF's gain over base features as event lifespans
//       shrink (the paper's motivation for why CF fails on events)
//
// Every variant reports the eval-week AUC of the representation cosine
// (ablations a-d), or the combiner AUC (e, f).

#include <cstdio>

#include "bench/common/bench_profile.h"
#include "evrec/eval/table_printer.h"
#include "evrec/topics/lda.h"
#include "evrec/topics/plsa.h"
#include "evrec/util/math_util.h"
#include "evrec/util/string_util.h"

namespace {

using namespace evrec;

pipeline::PipelineConfig AblationProfile() {
  pipeline::PipelineConfig cfg = bench::BenchProfile();
  cfg.simnet.num_users = 500;
  cfg.simnet.num_pages = 160;
  cfg.simnet.num_events = 700;
  cfg.rep.max_epochs = 6;
  cfg.rep.early_stop_patience = 6;
  cfg.max_user_tokens = 80;
  cfg.max_event_tokens = 96;
  return cfg;
}

// Eval-week AUC of the raw representation cosine.
double RepCosineEvalAuc(pipeline::TwoStagePipeline& p) {
  const auto& ds = p.dataset();
  const auto& ur = p.user_reps();
  const auto& er = p.event_reps();
  std::vector<double> scores;
  std::vector<float> labels;
  for (const auto& i : ds.eval) {
    scores.push_back(CosineSimilarity(
        ur[static_cast<size_t>(i.user)].data(),
        er[static_cast<size_t>(i.event)].data(),
        static_cast<int>(ur[static_cast<size_t>(i.user)].size())));
    labels.push_back(i.label);
  }
  return eval::RocAuc(scores, labels);
}

double RunRepVariant(pipeline::PipelineConfig cfg) {
  pipeline::TwoStagePipeline p(cfg);
  p.Prepare();
  p.TrainRepresentation();
  p.ComputeRepVectors();
  return RepCosineEvalAuc(p);
}

}  // namespace

int main() {
  bench::PrintHeader("ABLATIONS - design choices of the joint model");

  // ---- (a) pooling ----
  {
    eval::TablePrinter table({"pooling", "rep cosine eval AUC"});
    for (auto [name, pool] :
         {std::pair<const char*, nn::PoolType>{"logsumexp (paper)",
                                               nn::PoolType::kLogSumExp},
          {"max", nn::PoolType::kMax},
          {"mean", nn::PoolType::kMean}}) {
      pipeline::PipelineConfig cfg = AblationProfile();
      cfg.rep.pool = pool;
      table.AddRow({name, eval::Metric3(RunRepVariant(cfg))});
    }
    std::printf("(a) pooling type\n");
    table.Print();
  }

  // ---- (b) residual bypass ----
  {
    eval::TablePrinter table({"bypass", "rep cosine eval AUC"});
    for (bool bypass : {true, false}) {
      pipeline::PipelineConfig cfg = AblationProfile();
      cfg.rep.residual_bypass = bypass;
      table.AddRow({bypass ? "on (paper)" : "off",
                    eval::Metric3(RunRepVariant(cfg))});
    }
    std::printf("\n(b) residual bypass into the representation layer\n");
    table.Print();
  }

  // ---- (c) window sets ----
  {
    eval::TablePrinter table({"text windows", "rep cosine eval AUC"});
    for (auto [name, windows] :
         {std::pair<const char*, std::vector<int>>{"{1}", {1}},
          {"{1,3}", {1, 3}},
          {"{1,3,5} (paper)", {1, 3, 5}}}) {
      pipeline::PipelineConfig cfg = AblationProfile();
      cfg.rep.text_windows = windows;
      table.AddRow({name, eval::Metric3(RunRepVariant(cfg))});
    }
    std::printf("\n(c) convolution window sizes\n");
    table.Print();
  }

  // ---- (d) theta_r ----
  {
    eval::TablePrinter table({"theta_r", "rep cosine eval AUC"});
    for (float theta : {-0.2f, 0.0f, 0.2f}) {
      pipeline::PipelineConfig cfg = AblationProfile();
      cfg.rep.theta_r = theta;
      table.AddRow({eval::Metric3(theta),
                    eval::Metric3(RunRepVariant(cfg))});
    }
    std::printf("\n(d) theta_r margin (paper: training not very sensitive)\n");
    table.Print();
  }

  // ---- (e) LDA / PLSA semantic features vs representation features ----
  {
    pipeline::PipelineConfig cfg = AblationProfile();
    pipeline::TwoStagePipeline p(cfg);
    p.Prepare();
    p.TrainRepresentation();
    p.ComputeRepVectors();
    const auto& ds = p.dataset();

    // Word-level vocabulary over event text from the training period; the
    // BoW models represent a user by the concatenation of their PAST
    // ATTENDED EVENTS' text (the homogeneity restriction of prior work:
    // user docs in the user-word space are useless to an event-trained
    // topic model because the vocabularies are disjoint).
    text::WordUnigramTokenizer unigram;
    std::vector<std::vector<std::string>> docs;
    for (const auto& e : ds.events) {
      if (e.create_day < ds.config.rep_train_days) {
        docs.push_back(simnet::EventTextWords(e));
      }
    }
    text::Vocabulary vocab =
        text::BuildVocabulary(unigram, docs, 2, 100000);
    auto encode_ids = [&](const std::vector<std::string>& words) {
      std::vector<int> ids;
      for (const auto& w : words) {
        int id = vocab.Lookup(w);
        if (id >= 0) ids.push_back(id);
      }
      return ids;
    };
    std::vector<std::vector<int>> corpus;
    for (const auto& d : docs) corpus.push_back(encode_ids(d));

    topics::LdaConfig lda_cfg;
    lda_cfg.num_topics = cfg.simnet.num_topics;
    lda_cfg.train_iterations = 100;
    topics::LdaModel lda;
    lda.Train(corpus, vocab.size(), lda_cfg);

    // Event mixtures (fold-in for post-cutoff events), user mixtures from
    // attended-events history before the combiner period.
    Rng infer_rng(7);
    std::vector<std::vector<double>> event_mix(ds.events.size());
    for (const auto& e : ds.events) {
      event_mix[static_cast<size_t>(e.id)] = lda.InferTopics(
          encode_ids(simnet::EventTextWords(e)), infer_rng);
    }
    std::vector<std::vector<double>> user_mix(ds.world.users.size());
    const auto& index = p.feature_index();
    for (const auto& u : ds.world.users) {
      std::vector<int> history_doc;
      for (int e : index.UserJoinedEventsBefore(
               u.id, ds.config.rep_train_days)) {
        auto ids = encode_ids(
            simnet::EventTextWords(ds.events[static_cast<size_t>(e)]));
        history_doc.insert(history_doc.end(), ids.begin(), ids.end());
      }
      user_mix[static_cast<size_t>(u.id)] =
          lda.InferTopics(history_doc, infer_rng);
    }

    // Evaluate: base + LDA-similarity feature vs base + rep features.
    baseline::FeatureConfig base_cfg;  // base only
    base_cfg.cf = false;
    auto base_result = p.EvaluateFeatureConfig(base_cfg);

    baseline::FeatureConfig rep_cfg;
    rep_cfg.cf = false;
    rep_cfg.rep_vectors = true;
    auto rep_result = p.EvaluateFeatureConfig(rep_cfg);

    // base + LDA sim: assemble manually.
    baseline::FeatureAssembler lda_assembler(p.feature_index(), nullptr,
                                             nullptr);
    lda_assembler.SetExtraFeatures(
        {"lda_topic_similarity"},
        [&](int user, int event, int day, std::vector<float>* out) {
          (void)day;
          out->push_back(static_cast<float>(topics::LdaModel::MixtureSimilarity(
              user_mix[static_cast<size_t>(user)],
              event_mix[static_cast<size_t>(event)])));
        });
    gbdt::DataMatrix train_x, eval_x;
    std::vector<float> train_y, eval_y;
    lda_assembler.Assemble(ds.combiner_train, base_cfg, &train_x, &train_y);
    lda_assembler.Assemble(ds.eval, base_cfg, &eval_x, &eval_y);
    gbdt::GbdtModel lda_model;
    lda_model.Train(train_x, train_y, cfg.gbdt);
    double lda_auc =
        eval::RocAuc(lda_model.PredictProbabilities(eval_x), eval_y);

    std::printf("\n(e) semantic features in the combiner (base, no CF)\n");
    eval::TablePrinter table({"features", "eval AUC"});
    table.AddRow({"base only", eval::Metric3(base_result.auc)});
    table.AddRow({"base + LDA topic similarity", eval::Metric3(lda_auc)});
    table.AddRow({"base + CNN rep features (paper)",
                  eval::Metric3(rep_result.auc)});
    table.Print();
    std::printf("shape: CNN rep beats BoW LDA features : %s\n",
                rep_result.auc > lda_auc ? "OK" : "MISMATCH");
  }

  // ---- (f) transiency sweep ----
  {
    std::printf("\n(f) event transiency vs the value of CF features\n");
    eval::TablePrinter table({"lifespan (days)", "cold-start frac",
                              "base AUC", "base+CF AUC", "CF gain"});
    for (auto [lo, hi] : {std::pair<double, double>{1.0, 3.0},
                          {1.0, 14.0},
                          {10.0, 28.0}}) {
      pipeline::PipelineConfig cfg = AblationProfile();
      cfg.simnet.lifespan_min_days = lo;
      cfg.simnet.lifespan_max_days = hi;
      pipeline::TwoStagePipeline p(cfg);
      p.Prepare();
      // CF ablation needs no representation model; evaluate base vs
      // base+CF combiner directly.
      p.TrainRepresentation();  // cached/fast; keeps the API uniform
      p.ComputeRepVectors();
      baseline::FeatureConfig base_cfg;
      base_cfg.cf = false;
      baseline::FeatureConfig cf_cfg;
      auto base_r = p.EvaluateFeatureConfig(base_cfg);
      auto cf_r = p.EvaluateFeatureConfig(cf_cfg);
      table.AddRow({evrec::StrFormat("%.0f-%.0f", lo, hi),
                    eval::Metric3(simnet::ColdStartEventFraction(p.dataset())),
                    eval::Metric3(base_r.auc), eval::Metric3(cf_r.auc),
                    evrec::StrFormat("%+.3f", cf_r.auc - base_r.auc)});
    }
    table.Print();
    std::printf("expectation: CF gain grows as lifespans lengthen\n");
  }

  return 0;
}
