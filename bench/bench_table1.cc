// Reproduces TABLE 1 (paper §5.2): effect of different ways of integrating
// the representation model's outputs into the GBDT combiner.
//
//   | Integration Setting  | PR60  | PR80  | AUC   |   (paper values)
//   | Rep. Vectors         | 0.289 | 0.215 | 0.754 |
//   | Baseline             | 0.388 | 0.262 | 0.810 |
//   | Add Rep. Vectors     | 0.516 | 0.339 | 0.861 |
//   | Add Score and Rep.   | 0.521 | 0.346 | 0.862 |
//
// Expected shape: Rep-only < Baseline < Baseline+Rep, with the score
// feature adding almost nothing on top of the vectors (the GBDT already
// captures per-dimension interactions).

#include <cstdio>

#include "bench/common/bench_profile.h"
#include "evrec/eval/table_printer.h"

namespace {

struct PaperRow {
  const char* name;
  double pr60, pr80, auc;
};

}  // namespace

int main() {
  using namespace evrec;
  bench::PrintHeader("TABLE 1 - effect of different integration settings");

  auto pipeline = bench::MakeTrainedPipeline(bench::BenchProfile());

  struct Config {
    PaperRow paper;
    baseline::FeatureConfig features;
  };
  std::vector<Config> configs = {
      {{"Rep. Vectors", 0.289, 0.215, 0.754},
       {/*base=*/false, /*cf=*/false, /*rep_vectors=*/true,
        /*rep_score=*/false}},
      {{"Baseline", 0.388, 0.262, 0.810},
       {true, true, false, false}},
      {{"Add Rep. Vectors", 0.516, 0.339, 0.861},
       {true, true, true, false}},
      {{"Add Score and Rep.", 0.521, 0.346, 0.862},
       {true, true, true, true}},
  };

  eval::TablePrinter table({"Integration Setting", "PR60", "PR80", "AUC",
                            "paper PR60", "paper PR80", "paper AUC"});
  std::vector<pipeline::EvalResult> results;
  for (const auto& c : configs) {
    pipeline::EvalResult r = pipeline->EvaluateFeatureConfig(c.features);
    table.AddRow({c.paper.name, eval::Metric3(r.pr60), eval::Metric3(r.pr80),
                  eval::Metric3(r.auc), eval::Metric3(c.paper.pr60),
                  eval::Metric3(c.paper.pr80), eval::Metric3(c.paper.auc)});
    results.push_back(std::move(r));
  }
  table.Print();

  // Shape checks mirrored from the paper's narrative.
  bool rep_below_baseline = results[0].auc < results[1].auc;
  bool rep_lifts_baseline = results[2].auc > results[1].auc + 0.005;
  bool score_adds_little =
      std::abs(results[3].auc - results[2].auc) < 0.02;
  std::printf("\nshape: rep-only < baseline            : %s\n",
              rep_below_baseline ? "OK" : "MISMATCH");
  std::printf("shape: baseline+rep > baseline        : %s\n",
              rep_lifts_baseline ? "OK" : "MISMATCH");
  std::printf("shape: score adds ~nothing over rep   : %s\n",
              score_adds_little ? "OK" : "MISMATCH");
  std::printf("AUC lift from rep features: %+.1f%% (paper: +6%%)\n",
              100.0 * (results[2].auc - results[1].auc) / results[1].auc);

  std::map<std::string, double> metrics = {
      {"auc_rep_only", results[0].auc},
      {"auc_baseline", results[1].auc},
      {"auc_baseline_plus_rep", results[2].auc},
      {"auc_all", results[3].auc},
      {"pr60_all", results[3].pr60},
      {"pr80_all", results[3].pr80}};
  // Data-parallel trainer sweep (1/2/4/8 threads) on the same prepared
  // dataset: records measured speedup_vs_1thread and the determinism check.
  for (const auto& [key, value] : bench::RunTrainerThreadSweep(*pipeline)) {
    metrics[key] = value;
  }
  // Live-telemetry hot-path overhead (ns/op) and exposition-write cost so
  // bench_diff catches monitoring regressions alongside model quality.
  for (const auto& [key, value] : bench::MonitorOverheadMetrics()) {
    metrics[key] = value;
  }
  // Profiler hot-path overhead (span charge, tallied allocation, export)
  // so bench_diff catches profiling-cost regressions the same way.
  for (const auto& [key, value] : bench::ProfilerOverheadMetrics()) {
    metrics[key] = value;
  }
  // SIMD kernel-layer throughput (dot/gemv/score-block ns/op, scalar-tier
  // speedups, and flat-vs-legacy candidate-scoring rate) so bench_diff
  // gates kernel regressions alongside model quality.
  for (const auto& [key, value] : bench::KernelThroughputMetrics()) {
    metrics[key] = value;
  }
  bench::WriteBenchJson("table1", metrics);
  return 0;
}
