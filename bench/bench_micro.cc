// Microbenchmarks (google-benchmark): kernel and serving-path costs —
// tokenization, encoding, convolution forward/backward, tower inference,
// GBDT training and prediction, KV cache, and the cached-vs-uncached
// pairwise scoring path that motivates the paper's §4 serving design.

#include <benchmark/benchmark.h>

#include "evrec/gbdt/gbdt.h"
#include "evrec/la/flat_block.h"
#include "evrec/la/matrix.h"
#include "evrec/la/vec_ops.h"
#include "evrec/model/joint_model.h"
#include "evrec/store/rep_cache.h"
#include "evrec/text/encoder.h"
#include "evrec/text/normalizer.h"
#include "evrec/util/math_util.h"
#include "evrec/util/rng.h"

namespace evrec {
namespace {

std::vector<std::string> MakeWords(int n, Rng& rng) {
  std::vector<std::string> words;
  const char* syllables[] = {"ka", "rem", "tol", "bri", "sha", "nu",
                             "vel", "dor", "mi", "pa"};
  for (int i = 0; i < n; ++i) {
    std::string w;
    int parts = rng.UniformInt(2, 3);
    for (int p = 0; p < parts; ++p) w += syllables[rng.UniformInt(0, 9)];
    words.push_back(std::move(w));
  }
  return words;
}

void BM_Normalize(benchmark::State& state) {
  std::string text =
      "Seattle Ice-Cream Festival: first ANNUAL festival, located at "
      "Chophouse Row on Capitol Hill! A dozen of Seattle's best makers.";
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::NormalizeToWords(text));
  }
}
BENCHMARK(BM_Normalize);

void BM_TrigramTokenize(benchmark::State& state) {
  Rng rng(1);
  auto words = MakeWords(static_cast<int>(state.range(0)), rng);
  text::LetterTrigramTokenizer tok;
  for (auto _ : state) {
    std::vector<text::Token> out;
    tok.Tokenize(words, &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_TrigramTokenize)->Arg(16)->Arg(64)->Arg(256);

struct EncoderFixture {
  EncoderFixture() {
    Rng rng(2);
    std::vector<std::vector<std::string>> docs;
    for (int d = 0; d < 200; ++d) docs.push_back(MakeWords(40, rng));
    text::LetterTrigramTokenizer tok;
    encoder = std::make_unique<text::TextEncoder>(
        std::make_unique<text::LetterTrigramTokenizer>(),
        text::BuildVocabulary(tok, docs, 1, 100000));
    sample = MakeWords(40, rng);
  }
  std::unique_ptr<text::TextEncoder> encoder;
  std::vector<std::string> sample;
};

void BM_Encode(benchmark::State& state) {
  static EncoderFixture* fixture = new EncoderFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture->encoder->Encode(fixture->sample));
  }
}
BENCHMARK(BM_Encode);

struct ModelFixture {
  ModelFixture() {
    model::JointModelConfig cfg;
    cfg.embedding_dim = 32;
    cfg.module_out_dim = 32;
    cfg.hidden_dim = 128;
    cfg.rep_dim = 64;
    model = std::make_unique<model::JointModel>(cfg, 4000, 500, 4000);
    Rng rng(3);
    model->RandomInit(rng);
    user_inputs.resize(2);
    event_inputs.resize(1);
    for (int i = 0; i < 96; ++i) {
      user_inputs[0].token_ids.push_back(rng.UniformInt(0, 3999));
      user_inputs[0].word_index.push_back(i / 4);
    }
    for (int i = 0; i < 12; ++i) {
      user_inputs[1].token_ids.push_back(rng.UniformInt(0, 499));
      user_inputs[1].word_index.push_back(i);
    }
    for (int i = 0; i < 128; ++i) {
      event_inputs[0].token_ids.push_back(rng.UniformInt(0, 3999));
      event_inputs[0].word_index.push_back(i / 4);
    }
  }
  std::unique_ptr<model::JointModel> model;
  std::vector<text::EncodedText> user_inputs;
  std::vector<text::EncodedText> event_inputs;
};

ModelFixture& GetModelFixture() {
  static ModelFixture* fixture = new ModelFixture();
  return *fixture;
}

void BM_TowerForwardEvent(benchmark::State& state) {
  auto& f = GetModelFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.model->EventVector(f.event_inputs));
  }
}
BENCHMARK(BM_TowerForwardEvent);

void BM_PairSimilarityUncached(benchmark::State& state) {
  // The naive serving path: run both towers per pair.
  auto& f = GetModelFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.model->Score(f.user_inputs, f.event_inputs));
  }
}
BENCHMARK(BM_PairSimilarityUncached);

void BM_PairSimilarityCached(benchmark::State& state) {
  // The paper's serving path: vectors precomputed and cached; pairwise
  // scoring is one cosine.
  auto& f = GetModelFixture();
  store::RepVectorCache cache(4, 1024);
  cache.Precompute(store::EntityKind::kUser, 1,
                   f.model->UserVector(f.user_inputs));
  cache.Precompute(store::EntityKind::kEvent, 1,
                   f.model->EventVector(f.event_inputs));
  auto miss = []() { return std::vector<float>(); };
  for (auto _ : state) {
    auto u = cache.GetOrCompute(store::EntityKind::kUser, 1, miss);
    auto e = cache.GetOrCompute(store::EntityKind::kEvent, 1, miss);
    benchmark::DoNotOptimize(
        CosineSimilarity(u.data(), e.data(), static_cast<int>(u.size())));
  }
}
BENCHMARK(BM_PairSimilarityCached);

void BM_TrainStepPair(benchmark::State& state) {
  auto& f = GetModelFixture();
  model::JointModel::PairContext ctx;
  for (auto _ : state) {
    f.model->Similarity(f.user_inputs, f.event_inputs, &ctx);
    f.model->AccumulatePairGradient(ctx, 1.0f);
    f.model->Step(0.0f);  // zero-lr step to flush gradients
  }
}
BENCHMARK(BM_TrainStepPair);

void BM_GbdtTrain(benchmark::State& state) {
  Rng rng(4);
  const int n = static_cast<int>(state.range(0));
  gbdt::DataMatrix x(n, 20);
  std::vector<float> y(static_cast<size_t>(n));
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < 20; ++c) {
      x.Set(r, c, static_cast<float>(rng.Normal()));
    }
    y[static_cast<size_t>(r)] = x.At(r, 0) > 0 ? 1.0f : 0.0f;
  }
  gbdt::GbdtConfig cfg;
  cfg.num_trees = 20;
  for (auto _ : state) {
    gbdt::GbdtModel model;
    model.Train(x, y, cfg);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_GbdtTrain)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

void BM_GbdtPredict(benchmark::State& state) {
  Rng rng(5);
  gbdt::DataMatrix x(2000, 20);
  std::vector<float> y(2000);
  for (int r = 0; r < 2000; ++r) {
    for (int c = 0; c < 20; ++c) {
      x.Set(r, c, static_cast<float>(rng.Normal()));
    }
    y[static_cast<size_t>(r)] = x.At(r, 0) > 0 ? 1.0f : 0.0f;
  }
  gbdt::GbdtConfig cfg;  // 200 trees x 12 leaves (paper capacity)
  gbdt::GbdtModel model;
  model.Train(x, y, cfg);
  int row = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.PredictProbability(x.Row(row)));
    row = (row + 1) % 2000;
  }
}
BENCHMARK(BM_GbdtPredict);

void BM_KvCacheGet(benchmark::State& state) {
  store::ShardedKvCache cache(16, 4096);
  Rng rng(6);
  std::vector<float> value(64, 1.0f);
  for (uint64_t k = 0; k < 10000; ++k) cache.Put(k, value);
  uint64_t key = 0;
  std::vector<float> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Get(key % 10000, &out));
    ++key;
  }
}
BENCHMARK(BM_KvCacheGet);

// --- SIMD kernel layer (la/simd/) ---

void BM_KernelDot(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  Rng rng(7);
  std::vector<float> x(static_cast<size_t>(dim)),
      y(static_cast<size_t>(dim));
  for (auto& v : x) v = static_cast<float>(rng.Uniform(-1, 1));
  for (auto& v : y) v = static_cast<float>(rng.Uniform(-1, 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::DotF(x.data(), y.data(), dim));
  }
}
BENCHMARK(BM_KernelDot)->Arg(32)->Arg(64)->Arg(128);

void BM_KernelGemv(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  Rng rng(8);
  la::Matrix m(64, dim);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.Uniform(-1, 1));
  }
  std::vector<float> x(static_cast<size_t>(dim)), out(64);
  for (auto& v : x) v = static_cast<float>(rng.Uniform(-1, 1));
  for (auto _ : state) {
    m.Gemv(x.data(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_KernelGemv)->Arg(32)->Arg(64)->Arg(128);

// One 8-candidate cosine sweep over a flat block: the serving scorer's
// inner loop (FlatVectorBlock::CosineBlock).
void BM_KernelScoreBlock8(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  Rng rng(9);
  la::FlatVectorBlock block(dim);
  std::vector<float> q(static_cast<size_t>(dim));
  for (auto& v : q) v = static_cast<float>(rng.Uniform(-1, 1));
  for (int i = 0; i < 8; ++i) {
    std::vector<float> v(static_cast<size_t>(dim));
    for (auto& f : v) f = static_cast<float>(rng.Uniform(-1, 1));
    block.Append(v);
  }
  const float q2 = la::DotF(q.data(), q.data(), dim);
  float scores8[8];
  for (auto _ : state) {
    block.CosineBlock(0, q.data(), q2, scores8);
    benchmark::DoNotOptimize(scores8);
  }
}
BENCHMARK(BM_KernelScoreBlock8)->Arg(32)->Arg(64)->Arg(128);

}  // namespace
}  // namespace evrec

BENCHMARK_MAIN();
