// Reproduces TABLE 2 (paper §5.2): comparison of feature-set combinations,
// isolating what collaborative filtering adds versus what the
// representation features add.
//
//   | Feature Combinations   | PR60  | PR80  | AUC   |   (paper values)
//   | Base Features (No-CF)  | 0.364 | 0.252 | 0.796 |
//   | Base and CF Features   | 0.388 | 0.262 | 0.810 |
//   | Base and Rep. Features | 0.516 | 0.339 | 0.859 |
//   | All Features           | 0.521 | 0.346 | 0.862 |
//
// Expected shape: CF adds a modest lift over base (limited by event
// transiency); representation features add substantially more; with rep
// features present, CF's marginal contribution mostly vanishes (the gains
// overlap).

#include <cstdio>

#include "bench/common/bench_profile.h"
#include "evrec/eval/table_printer.h"

namespace {

struct PaperRow {
  const char* name;
  double pr60, pr80, auc;
};

}  // namespace

int main() {
  using namespace evrec;
  bench::PrintHeader("TABLE 2 - comparison on combinations of feature sets");

  auto pipeline = bench::MakeTrainedPipeline(bench::BenchProfile());

  struct Config {
    PaperRow paper;
    baseline::FeatureConfig features;
  };
  std::vector<Config> configs = {
      {{"Base Features (No-CF)", 0.364, 0.252, 0.796},
       {/*base=*/true, /*cf=*/false, /*rep_vectors=*/false,
        /*rep_score=*/false}},
      {{"Base and CF Features", 0.388, 0.262, 0.810},
       {true, true, false, false}},
      {{"Base and Rep. Features", 0.516, 0.339, 0.859},
       {true, false, true, false}},
      {{"All Features", 0.521, 0.346, 0.862},
       {true, true, true, false}},
  };

  eval::TablePrinter table({"Feature Combinations", "PR60", "PR80", "AUC",
                            "paper PR60", "paper PR80", "paper AUC"});
  std::vector<pipeline::EvalResult> results;
  for (const auto& c : configs) {
    pipeline::EvalResult r = pipeline->EvaluateFeatureConfig(c.features);
    table.AddRow({c.paper.name, eval::Metric3(r.pr60), eval::Metric3(r.pr80),
                  eval::Metric3(r.auc), eval::Metric3(c.paper.pr60),
                  eval::Metric3(c.paper.pr80), eval::Metric3(c.paper.auc)});
    results.push_back(std::move(r));
  }
  table.Print();

  double cf_gain = results[1].auc - results[0].auc;
  double rep_gain = results[2].auc - results[0].auc;
  double cf_gain_given_rep = results[3].auc - results[2].auc;
  std::printf("\nshape: CF adds a modest lift over base      : %s (%+.3f)\n",
              cf_gain > 0.0 ? "OK" : "MISMATCH", cf_gain);
  std::printf("shape: rep features add more than CF        : %s (%+.3f)\n",
              rep_gain > cf_gain ? "OK" : "MISMATCH", rep_gain);
  std::printf("shape: CF mostly redundant once rep present : %s (%+.3f)\n",
              cf_gain_given_rep < cf_gain + 0.01 ? "OK" : "MISMATCH",
              cf_gain_given_rep);

  bench::WriteBenchJson(
      "table2",
      {{"auc_base_no_cf", results[0].auc},
       {"auc_base_cf", results[1].auc},
       {"auc_base_rep", results[2].auc},
       {"auc_all", results[3].auc},
       {"cf_gain", cf_gain},
       {"rep_gain", rep_gain},
       {"trainer_threads",
        static_cast<double>(pipeline->config().threads)}});
  return 0;
}
