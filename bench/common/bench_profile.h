// Shared configuration for the paper-reproduction benches.
//
// The "bench profile" is a shape-preserving scale-down of the paper's
// setup so the full two-stage system trains on a single core in minutes:
// the architecture keeps the paper's topology (3 trigram text modules with
// windows {1,3,5} + 1 categorical module, hidden layer, residual bypass,
// 128->64-d representation) and the paper's GBDT capacity (200 trees x 12
// leaves), while the world and embedding widths shrink. EXPERIMENTS.md
// records the exact profile next to every reproduced number.
//
// All table/figure benches share one trained representation model through
// the pipeline's disk cache (directory "evrec_bench_cache" under the
// current working directory), so only the first bench invocation pays the
// training cost.

#ifndef EVREC_BENCH_COMMON_BENCH_PROFILE_H_
#define EVREC_BENCH_COMMON_BENCH_PROFILE_H_

#include <map>
#include <memory>
#include <string>

#include "evrec/pipeline/pipeline.h"

namespace evrec {
namespace bench {

// Worker threads for the bench pipelines: the EVREC_THREADS environment
// variable, clamped to >= 1 (default 1). Training results are identical
// for any value; only wall-clock changes.
int BenchThreads();

// The canonical bench-scale pipeline configuration (threads comes from
// BenchThreads()).
pipeline::PipelineConfig BenchProfile();

// Data-parallel trainer sweep: trains a short (2-epoch) copy of the bench
// representation model at 1/2/4/8 worker threads on the pipeline's
// prepared dataset and returns metrics for WriteBenchJson:
//   train_seconds_t<N>    wall seconds at N threads
//   final_loss_t<N>       last epoch's training loss at N threads
//   speedup_vs_1thread    t1 seconds / t8 seconds (measured, not assumed)
//   sweep_deterministic   1 when every thread count produced bit-identical
//                         epoch losses (the engine's contract), else 0
//   hardware_threads      what the machine actually offers — read the
//                         speedup against this (a 1-core box cannot show
//                         parallel speedup no matter the engine)
std::map<std::string, double> RunTrainerThreadSweep(
    const pipeline::TwoStagePipeline& pipeline);

// Hot-path overhead of the live-telemetry layer (obs/monitor.h), measured
// on a FakeClock so bucket rotation is exercised deterministically:
//   monitor_counter_ns_per_op    one RollingCounter::Add
//   monitor_histogram_ns_per_op  one RollingHistogram::Record
//   openmetrics_write_micros     one full OpenMetrics exposition of the
//                                global registry plus a populated monitor
// All three are lower-is-better, so bench_diff gates regressions.
std::map<std::string, double> MonitorOverheadMetrics();

// Hot-path overhead of the in-process profiler (obs/profile.h) while
// deterministic collection is live:
//   profiler_span_ns_per_op   one ScopedSpan open/close charged to the
//                             aggregate (the per-phase instrumentation
//                             cost trainers and the serving path pay)
//   profiler_alloc_ns_per_op  one tallied new[]/delete[] round trip
//                             through the replaced global operators
//   profiler_export_micros    one full text-profile export of the
//                             aggregate the loop above produced
// All three are lower-is-better, so bench_diff gates regressions.
std::map<std::string, double> ProfilerOverheadMetrics();

// Throughput of the dispatched SIMD kernel layer (la/simd/) and the
// batched serving scorer, at the representation dims 32/64/128:
//   dot_d<D>_ns_per_op          one la::DotF under the native tier
//   gemv_d<D>_ns_per_op         one 64xD Matrix::Gemv under the native tier
//   score_block_d<D>_ns_per_op  one 8-candidate cosine block sweep
//   simd_dot_speedup_d<D>       scalar-tier ns / native-tier ns
//   simd_gemv_speedup_d<D>      scalar-tier ns / native-tier ns
//   score_candidates_per_sec_flat    candidates/sec, flat blocked layout
//   score_candidates_per_sec_legacy  candidates/sec, the per-candidate
//                                    std::vector + double-cosine path the
//                                    flat layout replaced
//   score_candidates_flat_speedup    flat / legacy
//   simd_level                       active tier (0 scalar, 1 sse2, 2 avx2)
// ns_per_op metrics are lower-is-better; the per_sec and speedup metrics
// are higher-is-better — both named so bench_diff gates the right way.
std::map<std::string, double> KernelThroughputMetrics();

// Builds the pipeline, trains (or loads) the representation model, and
// precomputes all representation vectors. Prints coarse phase timing.
std::unique_ptr<pipeline::TwoStagePipeline> MakeTrainedPipeline(
    const pipeline::PipelineConfig& config);

// Prints a "paper vs measured" metric table row-set header and helpers.
void PrintHeader(const char* title);

// Writes a P/R curve as CSV next to the binary (for external plotting).
void WriteCurveCsv(const std::string& path, const std::string& series,
                   const std::vector<eval::PrPoint>& curve);

// Writes BENCH_<name>.json in the working directory: the caller's headline
// metrics plus the wall time of every "span.*" phase recorded in the
// global metric registry so far (pipeline phases, trainer epochs, ...).
void WriteBenchJson(const std::string& name,
                    const std::map<std::string, double>& metrics);

}  // namespace bench
}  // namespace evrec

#endif  // EVREC_BENCH_COMMON_BENCH_PROFILE_H_
