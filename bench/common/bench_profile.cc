#include "bench/common/bench_profile.h"

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>

#include <fstream>
#include <sstream>

#include "evrec/la/flat_block.h"
#include "evrec/la/matrix.h"
#include "evrec/la/simd/dispatch.h"
#include "evrec/la/vec_ops.h"
#include "evrec/obs/metrics.h"
#include "evrec/obs/monitor.h"
#include "evrec/obs/openmetrics.h"
#include "evrec/obs/profile.h"
#include "evrec/obs/trace.h"
#include "evrec/util/clock.h"
#include "evrec/util/csv_writer.h"
#include "evrec/util/math_util.h"
#include "evrec/util/rng.h"
#include "evrec/util/string_util.h"
#include "evrec/util/thread_pool.h"
#include "evrec/util/timer.h"

namespace evrec {
namespace bench {

int BenchThreads() {
  const char* env = std::getenv("EVREC_THREADS");
  if (env == nullptr) return 1;
  int n = std::atoi(env);
  return n < 1 ? 1 : n;
}

pipeline::PipelineConfig BenchProfile() {
  pipeline::PipelineConfig cfg;

  // World: ~1.2k users / 1.5k events over the paper's 6-week horizon.
  cfg.simnet.seed = 2017;
  cfg.simnet.num_topics = 12;
  cfg.simnet.num_cities = 9;
  cfg.simnet.num_users = 1200;
  cfg.simnet.num_pages = 240;
  cfg.simnet.num_events = 1500;

  // Architecture: paper topology at half width.
  cfg.rep.embedding_dim = 32;
  cfg.rep.module_out_dim = 32;
  cfg.rep.hidden_dim = 128;
  cfg.rep.rep_dim = 64;
  cfg.rep.text_windows = {1, 3, 5};
  cfg.rep.categorical_windows = {1};
  cfg.rep.learning_rate = 0.05f;
  cfg.rep.batch_size = 32;
  cfg.rep.max_epochs = 12;
  cfg.rep.early_stop_patience = 3;
  cfg.rep.min_document_frequency = 2;

  // Combiner: the paper's capacity (200 trees, 12 leaves).
  cfg.gbdt.num_trees = 200;
  cfg.gbdt.max_leaves = 12;
  cfg.gbdt.learning_rate = 0.1;
  cfg.gbdt.min_samples_leaf = 20;

  // Latency-style document caps (production systems truncate documents).
  cfg.max_user_tokens = 96;
  cfg.max_event_tokens = 128;

  cfg.cache_dir = "evrec_bench_cache";
  cfg.threads = BenchThreads();
  return cfg;
}

std::map<std::string, double> RunTrainerThreadSweep(
    const pipeline::TwoStagePipeline& pipeline) {
  std::map<std::string, double> metrics;
  metrics["hardware_threads"] =
      static_cast<double>(ThreadPool::HardwareThreads());

  model::JointModelConfig cfg = pipeline.config().rep;
  cfg.max_epochs = 2;          // enough signal; the sweep runs 4 trainings
  cfg.early_stop_patience = 99;  // never cut a sweep leg short

  const pipeline::EncoderSet& enc = pipeline.encoders();
  const int thread_counts[] = {1, 2, 4, 8};
  std::vector<std::vector<double>> losses;
  double t1_seconds = 0.0, t8_seconds = 0.0;
  for (int threads : thread_counts) {
    model::JointModel model(cfg, enc.UserTextVocab(),
                            enc.UserCategoricalVocab(),
                            enc.EventTextVocab());
    Rng rng(cfg.seed, /*stream=*/5);
    model.RandomInit(rng);
    model.CalibrateNormalizers(pipeline.rep_data());
    model::TrainerConfig tcfg;
    tcfg.threads = threads;
    model::RepTrainer trainer(&model, tcfg);
    Rng train_rng = rng.Fork(29);
    Timer timer;
    model::TrainStats stats = trainer.Train(pipeline.rep_data(), train_rng);
    double seconds = timer.ElapsedSeconds();
    std::printf("[bench] trainer sweep: %d thread%s -> %.2fs (loss %.6f)\n",
                threads, threads == 1 ? " " : "s", seconds,
                stats.train_loss.empty() ? 0.0 : stats.train_loss.back());
    metrics[StrFormat("train_seconds_t%d", threads)] = seconds;
    metrics[StrFormat("final_loss_t%d", threads)] =
        stats.train_loss.empty() ? 0.0 : stats.train_loss.back();
    losses.push_back(stats.train_loss);
    if (threads == 1) t1_seconds = seconds;
    if (threads == 8) t8_seconds = seconds;
  }
  metrics["speedup_vs_1thread"] =
      t8_seconds > 0.0 ? t1_seconds / t8_seconds : 0.0;
  bool deterministic = true;
  for (const auto& l : losses) {
    if (l != losses.front()) deterministic = false;
  }
  metrics["sweep_deterministic"] = deterministic ? 1.0 : 0.0;
  std::printf("[bench] trainer sweep: speedup(8v1)=%.2fx deterministic=%s "
              "(hardware threads: %d)\n",
              metrics["speedup_vs_1thread"], deterministic ? "yes" : "NO",
              ThreadPool::HardwareThreads());
  return metrics;
}

std::map<std::string, double> MonitorOverheadMetrics() {
  std::map<std::string, double> metrics;
  FakeClock clock(0);
  obs::Monitor monitor(&clock);
  obs::RollingCounter* counter = monitor.GetCounter("bench.requests");
  obs::RollingHistogram* hist = monitor.GetHistogram("bench.micros");

  // Advance 50 simulated microseconds per op so bucket rotation (the
  // non-trivial branch of the hot path) is exercised, not just the
  // accumulate-into-current-bucket fast path.
  constexpr int kOps = 1 << 20;
  Timer timer;
  for (int i = 0; i < kOps; ++i) {
    counter->Add();
    clock.Advance(50);
  }
  metrics["monitor_counter_ns_per_op"] =
      timer.ElapsedSeconds() * 1e9 / kOps;
  timer.Reset();
  for (int i = 0; i < kOps; ++i) {
    hist->Record(static_cast<double>(i & 1023));
    clock.Advance(50);
  }
  metrics["monitor_histogram_ns_per_op"] =
      timer.ElapsedSeconds() * 1e9 / kOps;

  // Exposition cost over the registry the bench run actually populated
  // (span histograms, trainer counters, ...) plus the monitor above.
  constexpr int kWrites = 50;
  std::string exposition;
  timer.Reset();
  for (int i = 0; i < kWrites; ++i) {
    exposition =
        obs::ToOpenMetricsString(*obs::MetricRegistry::Global(), &monitor);
  }
  metrics["openmetrics_write_micros"] =
      timer.ElapsedSeconds() * 1e6 / kWrites;
  std::printf(
      "[bench] monitor overhead: counter %.0fns/op, histogram %.0fns/op, "
      "exposition %.0fus (%zu bytes)\n",
      metrics["monitor_counter_ns_per_op"],
      metrics["monitor_histogram_ns_per_op"],
      metrics["openmetrics_write_micros"], exposition.size());
  return metrics;
}

std::map<std::string, double> ProfilerOverheadMetrics() {
  std::map<std::string, double> metrics;
  obs::Profiler* profiler = obs::Profiler::Global();
  profiler->Stop();
  profiler->Clear();
  obs::ProfileConfig pcfg;
  pcfg.sample_hz = 1000;
  profiler->StartDeterministic(pcfg);

  // Span open/close is the per-phase cost trainers and the serving path
  // pay on every instrumented scope; charge against the live aggregate.
  constexpr int kOps = 1 << 16;
  Timer timer;
  for (int i = 0; i < kOps; ++i) {
    obs::ScopedSpan span("bench.profiler_span");
  }
  metrics["profiler_span_ns_per_op"] = timer.ElapsedSeconds() * 1e9 / kOps;

  // Tallied allocation: the replaced global operator new/delete bump the
  // thread-local accountant on every call while collecting.
  timer.Reset();
  {
    obs::ScopedSpan span("bench.profiler_alloc");
    for (int i = 0; i < kOps; ++i) {
      char* p = new char[64];
      asm volatile("" : : "g"(p) : "memory");  // defeat new-elision
      delete[] p;
    }
  }
  metrics["profiler_alloc_ns_per_op"] = timer.ElapsedSeconds() * 1e9 / kOps;

  profiler->Stop();
  constexpr int kWrites = 50;
  std::string text;
  timer.Reset();
  for (int i = 0; i < kWrites; ++i) {
    std::ostringstream os;
    profiler->WriteText(os);
    text = os.str();
  }
  metrics["profiler_export_micros"] = timer.ElapsedSeconds() * 1e6 / kWrites;
  profiler->Clear();
  std::printf(
      "[bench] profiler overhead: span %.0fns/op, alloc %.0fns/op, "
      "export %.0fus (%zu bytes)\n",
      metrics["profiler_span_ns_per_op"], metrics["profiler_alloc_ns_per_op"],
      metrics["profiler_export_micros"], text.size());
  return metrics;
}

namespace {

// One timed kernel loop: returns ns/op, defeating dead-code elimination
// by accumulating into a sink the caller prints. The first pass warms
// caches and the dispatch slot; the best of two timed passes is reported
// so a stray preemption on a busy box cannot invert a speedup ratio.
template <typename Fn>
double TimeNsPerOp(int iters, float* sink, Fn&& fn) {
  float acc = 0.0f;
  for (int i = 0; i < iters / 4; ++i) acc += fn();
  double best = 0.0;
  for (int pass = 0; pass < 2; ++pass) {
    Timer timer;
    for (int i = 0; i < iters; ++i) acc += fn();
    double ns = timer.ElapsedSeconds() * 1e9 / iters;
    if (pass == 0 || ns < best) best = ns;
  }
  *sink += acc;
  return best;
}

}  // namespace

std::map<std::string, double> KernelThroughputMetrics() {
  std::map<std::string, double> metrics;
  metrics["simd_level"] =
      static_cast<double>(la::simd::ActiveSimdLevel());
  const la::simd::SimdLevel native = la::simd::ActiveSimdLevel();
  Rng rng(331);
  float sink = 0.0f;

  // Per-kernel cost at the representation dims, native tier vs the scalar
  // reference. SetSimdLevelForTesting is safe here: bench setup is
  // single-threaded.
  for (int dim : {32, 64, 128}) {
    const int kIters = 1 << 16;
    std::vector<float> x(static_cast<size_t>(dim)),
        y(static_cast<size_t>(dim));
    for (auto& v : x) v = static_cast<float>(rng.Uniform(-1, 1));
    for (auto& v : y) v = static_cast<float>(rng.Uniform(-1, 1));
    la::Matrix m(64, dim);
    for (size_t i = 0; i < m.size(); ++i) {
      m.data()[i] = static_cast<float>(rng.Uniform(-1, 1));
    }
    std::vector<float> out(64);
    la::FlatVectorBlock block(dim);
    for (int i = 0; i < 8; ++i) block.Append(x);
    const float q2 = la::DotF(x.data(), x.data(), dim);
    float scores8[8];

    const std::string d = std::to_string(dim);
    double dot_native = 0.0, dot_scalar = 0.0;
    double gemv_native = 0.0, gemv_scalar = 0.0;
    for (int pass = 0; pass < 2; ++pass) {
      la::simd::SetSimdLevelForTesting(
          pass == 0 ? native : la::simd::SimdLevel::kScalar);
      double dot_ns = TimeNsPerOp(kIters, &sink, [&] {
        return la::DotF(x.data(), y.data(), dim);
      });
      double gemv_ns = TimeNsPerOp(kIters / 16, &sink, [&] {
        m.Gemv(x.data(), out.data());
        return out[0];
      });
      (pass == 0 ? dot_native : dot_scalar) = dot_ns;
      (pass == 0 ? gemv_native : gemv_scalar) = gemv_ns;
    }
    la::simd::SetSimdLevelForTesting(native);
    metrics["dot_d" + d + "_ns_per_op"] = dot_native;
    metrics["gemv_d" + d + "_ns_per_op"] = gemv_native;
    metrics["simd_dot_speedup_d" + d] = dot_scalar / dot_native;
    metrics["simd_gemv_speedup_d" + d] = gemv_scalar / gemv_native;
    metrics["score_block_d" + d + "_ns_per_op"] =
        TimeNsPerOp(kIters, &sink, [&] {
          block.CosineBlock(0, y.data(), q2, scores8);
          return scores8[0];
        });
  }

  // The serving scorer end to end: cosine-score kCands candidates against
  // one query, flat blocked layout vs the per-candidate std::vector +
  // double-precision-cosine loop it replaced (the pre-SIMD serving path).
  const int kDim = 64, kCands = 4096, kReps = 64;
  std::vector<std::vector<float>> legacy_vecs;
  la::FlatVectorBlock flat(kDim);
  for (int i = 0; i < kCands; ++i) {
    std::vector<float> v(static_cast<size_t>(kDim));
    for (auto& f : v) f = static_cast<float>(rng.Uniform(-1, 1));
    flat.Append(v);
    legacy_vecs.push_back(std::move(v));
  }
  std::vector<float> q(static_cast<size_t>(kDim));
  for (auto& f : q) f = static_cast<float>(rng.Uniform(-1, 1));
  std::vector<float> flat_scores(kCands);
  std::vector<double> legacy_scores(kCands);

  Timer timer;
  for (int r = 0; r < kReps; ++r) {
    flat.CosineAll(q.data(), flat_scores.data());
    sink += flat_scores[static_cast<size_t>(r) % kCands];
  }
  double flat_per_sec =
      static_cast<double>(kCands) * kReps / timer.ElapsedSeconds();
  timer.Reset();
  for (int r = 0; r < kReps; ++r) {
    for (int i = 0; i < kCands; ++i) {
      legacy_scores[static_cast<size_t>(i)] = CosineSimilarity(
          q.data(), legacy_vecs[static_cast<size_t>(i)].data(), kDim);
    }
    sink += static_cast<float>(legacy_scores[static_cast<size_t>(r)]);
  }
  double legacy_per_sec =
      static_cast<double>(kCands) * kReps / timer.ElapsedSeconds();
  metrics["score_candidates_per_sec_flat"] = flat_per_sec;
  metrics["score_candidates_per_sec_legacy"] = legacy_per_sec;
  metrics["score_candidates_flat_speedup"] = flat_per_sec / legacy_per_sec;

  std::printf(
      "[bench] kernels (%s tier, sink %.3f): dot64 %.1fns (x%.1f vs "
      "scalar), gemv64 %.0fns (x%.1f), scoring %.1fM/s flat vs %.1fM/s "
      "legacy (x%.1f)\n",
      la::simd::SimdLevelName(native), static_cast<double>(sink),
      metrics["dot_d64_ns_per_op"], metrics["simd_dot_speedup_d64"],
      metrics["gemv_d64_ns_per_op"], metrics["simd_gemv_speedup_d64"],
      flat_per_sec / 1e6, legacy_per_sec / 1e6,
      metrics["score_candidates_flat_speedup"]);
  return metrics;
}

std::unique_ptr<pipeline::TwoStagePipeline> MakeTrainedPipeline(
    const pipeline::PipelineConfig& config) {
  ::mkdir(config.cache_dir.c_str(), 0755);  // ok if it already exists
  auto pipeline = std::make_unique<pipeline::TwoStagePipeline>(config);
  Timer timer;
  pipeline->Prepare();
  std::printf("[bench] data+encoders: %.1fs\n", timer.ElapsedSeconds());
  timer.Reset();
  pipeline->TrainRepresentation();
  std::printf("[bench] representation model: %.1fs\n",
              timer.ElapsedSeconds());
  timer.Reset();
  pipeline->ComputeRepVectors();
  std::printf("[bench] vector precompute: %.1fs\n", timer.ElapsedSeconds());
  return pipeline;
}

void PrintHeader(const char* title) {
  std::printf("\n================================================------\n");
  std::printf("%s\n", title);
  std::printf("(shape reproduction on the synthetic substrate; absolute\n"
              " values are not expected to match the paper's production"
              " data)\n");
  std::printf("======================================================\n\n");
}

void WriteCurveCsv(const std::string& path, const std::string& series,
                   const std::vector<eval::PrPoint>& curve) {
  CsvWriter csv(path, {"series", "recall", "precision"});
  for (const auto& p : curve) {
    csv.WriteRow(std::vector<std::string>{
        series, StrFormat("%.6f", p.recall), StrFormat("%.6f", p.precision)});
  }
  if (!csv.Close().ok()) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
  } else {
    std::printf("[bench] wrote %s\n", path.c_str());
  }
}

void WriteBenchJson(const std::string& name,
                    const std::map<std::string, double>& metrics) {
  std::string path = StrFormat("BENCH_%s.json", name.c_str());
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"name\": \"" << name << "\",\n  \"metrics\": {";
  bool first = true;
  for (const auto& [key, value] : metrics) {
    out << (first ? "" : ",") << "\n    \"" << key << "\": "
        << StrFormat("%.6g", value);
    first = false;
  }
  out << "\n  },\n  \"phase_seconds\": {";
  // std::map iteration keeps phase names sorted, so the file is stable
  // across runs of the same bench.
  first = true;
  for (const auto& [hist_name, snap] :
       obs::MetricRegistry::Global()->HistogramValues()) {
    if (hist_name.rfind("span.", 0) != 0) continue;
    out << (first ? "" : ",") << "\n    \""
        << hist_name.substr(5) << "\": "
        << StrFormat("%.6g", snap.sum / 1e6);
    first = false;
  }
  out << "\n  }\n}\n";
  out.close();
  std::printf("[bench] wrote %s\n", path.c_str());
}

}  // namespace bench
}  // namespace evrec
