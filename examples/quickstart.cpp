// Quickstart: the smallest end-to-end use of the EvRec public API.
//
// Generates a tiny synthetic social network, trains the joint user-event
// representation model (stage 1), precomputes representation vectors,
// trains the GBDT combiner (stage 2), and scores a recommendation.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "evrec/pipeline/pipeline.h"
#include "evrec/util/logging.h"

int main() {
  using namespace evrec;
  SetLogLevel(LogLevel::kWarn);  // keep the example output focused

  // 1. Configure a small world + a small model (the library defaults
  //    follow the paper's dimensions; this example shrinks everything so
  //    it finishes in seconds).
  pipeline::PipelineConfig config;
  config.simnet = simnet::TinySimnetConfig();
  config.rep.embedding_dim = 16;
  config.rep.module_out_dim = 16;
  config.rep.hidden_dim = 32;
  config.rep.rep_dim = 16;
  config.rep.max_epochs = 4;
  config.gbdt.num_trees = 50;
  config.max_user_tokens = 64;
  config.max_event_tokens = 64;

  // 2. Stage 0+1: data, encoders, joint representation model.
  pipeline::TwoStagePipeline pipeline(config);
  pipeline.Prepare();
  std::printf("world: %d users, %d events, %zu training impressions\n",
              pipeline.dataset().num_users(), pipeline.dataset().num_events(),
              pipeline.dataset().rep_train.size());

  model::TrainStats stats = pipeline.TrainRepresentation();
  std::printf("representation model: %d epochs, final train loss %.4f\n",
              stats.epochs_run,
              stats.train_loss.empty() ? 0.0 : stats.train_loss.back());

  // 3. Precompute & cache all user/event vectors (the serving path).
  pipeline.ComputeRepVectors();
  auto cache_stats = pipeline.cache_stats();
  std::printf("serving cache: %llu vectors stored\n",
              static_cast<unsigned long long>(cache_stats.entries));

  // 4. Stage 2: train the combiner with baseline + representation
  //    features and evaluate on the held-out final week.
  baseline::FeatureConfig features;  // base + CF by default
  features.rep_vectors = true;
  pipeline::EvalResult result = pipeline.EvaluateFeatureConfig(features);
  std::printf("combiner [%s]: AUC=%.3f PR60=%.3f PR80=%.3f\n",
              result.name.c_str(), result.auc, result.pr60, result.pr80);

  // 5. Score one concrete (user, event) pair with the representation
  //    model alone — the cold-start matching signal.
  const auto& rep_data = pipeline.rep_data();
  double sim = pipeline.rep_model().Score(rep_data.user_inputs[0],
                                          rep_data.event_inputs[0]);
  std::printf("cosine(user 0, event 0) in the joint space: %.3f\n", sim);
  return 0;
}
