// Related-event semantic search (the paper's §3.2.1 / Table 3 scenario):
// pre-train the event tower as a Siamese network on title/body pairs —
// zero user feedback — and use it to find events similar to a seed event.
// This is the "related events" product surface.
//
// Build & run:  ./build/examples/related_events

#include <algorithm>
#include <cstdio>

#include "evrec/ann/ivf_index.h"
#include "evrec/model/siamese.h"
#include "evrec/pipeline/pipeline.h"
#include "evrec/simnet/docs.h"
#include "evrec/util/logging.h"
#include "evrec/util/math_util.h"

namespace {

std::string JoinWords(const std::vector<std::string>& words) {
  std::string out;
  for (const auto& w : words) {
    if (!out.empty()) out += ' ';
    out += w;
  }
  return out;
}

}  // namespace

int main() {
  using namespace evrec;
  SetLogLevel(LogLevel::kWarn);

  pipeline::PipelineConfig config;
  config.simnet = simnet::TinySimnetConfig();
  config.simnet.num_events = 300;
  config.rep.embedding_dim = 16;
  config.rep.module_out_dim = 16;
  config.rep.hidden_dim = 32;
  config.rep.rep_dim = 16;
  config.max_event_tokens = 96;

  pipeline::TwoStagePipeline pipeline(config);
  pipeline.Prepare();
  const auto& dataset = pipeline.dataset();
  const auto& encoders = pipeline.encoders();

  // Standalone event tower, Siamese pre-trained on (title, body) pairs.
  model::Tower tower({encoders.EventTextVocab()}, {config.rep.text_windows},
                     config.rep.embedding_dim, config.rep.module_out_dim,
                     config.rep.hidden_dim, config.rep.rep_dim,
                     config.rep.pool, config.rep.residual_bypass);
  Rng rng(7);
  tower.RandomInit(rng, config.rep.embedding_init_scale);
  tower.CalibrateNormalizer(pipeline.rep_data().event_inputs);

  std::vector<text::EncodedText> titles, bodies;
  for (const auto& event : dataset.events) {
    titles.push_back(encoders.EncodeEventTitle(event, 96));
    bodies.push_back(encoders.EncodeEventBody(event, 96));
  }
  model::SiameseConfig siamese;
  siamese.max_epochs = 8;
  Rng train_rng(8);
  model::SiameseStats stats =
      model::SiamesePretrain(&tower, titles, bodies, siamese, train_rng);
  std::printf("siamese pre-training: loss %.3f -> %.3f over %d epochs\n",
              stats.train_loss.front(), stats.train_loss.back(),
              stats.epochs_run);

  // Embed every event and serve nearest-neighbour queries through the
  // IVF approximate index (sublinear related-event search).
  std::vector<std::vector<float>> reps;
  reps.reserve(dataset.events.size());
  for (const auto& input : pipeline.rep_data().event_inputs) {
    reps.push_back(tower.Represent(input));
  }
  ann::IvfIndex index;
  ann::IvfConfig ivf;
  ivf.num_lists = 12;
  index.Build(reps, ivf);

  const int seed = 0;
  const auto& seed_event = dataset.events[seed];
  std::printf("\nseed event [%s]: %s\n", seed_event.category_name.c_str(),
              JoinWords(seed_event.title_words).c_str());

  auto results = index.Search(reps[seed], 5, /*nprobe=*/3, /*exclude=*/seed);
  std::printf("top related events (IVF, 3/%d lists probed, recall@5=%.2f "
              "vs exact):\n",
              index.num_lists(), index.RecallAtK(reps[seed], 5, 3));
  for (const auto& r : results) {
    const auto& e = dataset.events[static_cast<size_t>(r.id)];
    std::printf("  %.3f [%s] %s\n", r.score, e.category_name.c_str(),
                JoinWords(e.title_words).c_str());
  }
  return 0;
}
