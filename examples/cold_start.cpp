// Cold-start demonstration — the paper's central motivation. A brand-new
// event has zero feedback, so collaborative-filtering signals are
// identically zero; the representation model still ranks it sensibly for
// every user because it reads the event's TEXT.
//
// We take cold evaluation-week events (never seen in training) and compare
// two rankers on "which users will join":
//   - CF score (user-user collaborative filtering over prior joins)
//   - representation cosine (this paper's model)
//
// Build & run:  ./build/examples/cold_start

#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "evrec/pipeline/pipeline.h"
#include "evrec/util/logging.h"
#include "evrec/util/math_util.h"

int main() {
  using namespace evrec;
  SetLogLevel(LogLevel::kWarn);

  pipeline::PipelineConfig config;
  config.simnet = simnet::TinySimnetConfig();
  config.simnet.num_users = 400;
  config.simnet.num_events = 400;
  config.rep.embedding_dim = 16;
  config.rep.module_out_dim = 16;
  config.rep.hidden_dim = 32;
  config.rep.rep_dim = 16;
  config.rep.max_epochs = 6;
  config.max_user_tokens = 80;
  config.max_event_tokens = 96;

  pipeline::TwoStagePipeline pipeline(config);
  pipeline.Prepare();
  pipeline.TrainRepresentation();
  pipeline.ComputeRepVectors();

  const auto& dataset = pipeline.dataset();
  const auto& index = pipeline.feature_index();
  const auto& user_reps = pipeline.user_reps();
  const auto& event_reps = pipeline.event_reps();
  const int rep_dim = static_cast<int>(user_reps[0].size());

  // Events appearing in eval impressions but never in training.
  std::unordered_set<int> train_events;
  for (const auto& i : dataset.rep_train) train_events.insert(i.event);
  std::unordered_set<int> seen;
  std::vector<double> cf_scores, rep_scores;
  std::vector<float> labels;
  int cold_events = 0;
  baseline::CfFeatureExtractor cf(index);
  for (const auto& imp : dataset.eval) {
    if (train_events.count(imp.event) != 0) continue;
    if (seen.insert(imp.event).second) ++cold_events;
    std::vector<float> cf_features;
    cf.Extract(imp.user, imp.event, imp.day, &cf_features);
    // uucf_join_score is the canonical user-user CF signal.
    cf_scores.push_back(cf_features[0]);
    rep_scores.push_back(CosineSimilarity(
        user_reps[static_cast<size_t>(imp.user)].data(),
        event_reps[static_cast<size_t>(imp.event)].data(), rep_dim));
    labels.push_back(imp.label);
  }

  std::printf("cold evaluation events: %d; labelled impressions on them: "
              "%zu\n",
              cold_events, labels.size());
  double cf_auc = eval::RocAuc(cf_scores, labels);
  double rep_auc = eval::RocAuc(rep_scores, labels);
  std::printf("  user-user CF score AUC       : %.3f (no feedback -> "
              "uninformative)\n",
              cf_auc);
  std::printf("  representation cosine AUC    : %.3f (reads the event "
              "text)\n",
              rep_auc);

  // How empty is the CF signal on cold events?
  int zero_cf = 0;
  for (double s : cf_scores) zero_cf += s == 0.0 ? 1 : 0;
  std::printf("  CF score exactly zero on %.1f%% of cold impressions\n",
              100.0 * zero_cf / std::max<size_t>(1, cf_scores.size()));
  return 0;
}
