// Full production-style pipeline walkthrough, mirroring the deployment the
// paper describes:
//
//   1. train the representation model on 4 weeks of history
//   2. precompute user/event vectors into the serving KV cache (TAO-style)
//   3. train the GBDT combiner on week 5 with baseline + rep features
//   4. serve week-6 recommendations: batched-cosine retrieval over the
//      cached vectors narrows the candidates, then the combiner ranks the
//      retrieved set with CACHED vectors (no neural network at serve time)
//
// Prints a per-user top-k recommendation list plus serving-cache stats.
//
// Build & run:  ./build/examples/full_pipeline

#include <algorithm>
#include <cstdio>

#include "evrec/pipeline/pipeline.h"
#include "evrec/simnet/docs.h"
#include "evrec/util/logging.h"
#include "evrec/util/timer.h"

int main() {
  using namespace evrec;
  SetLogLevel(LogLevel::kWarn);

  pipeline::PipelineConfig config;
  config.simnet = simnet::TinySimnetConfig();
  config.simnet.num_users = 300;
  config.simnet.num_events = 300;
  config.rep.embedding_dim = 16;
  config.rep.module_out_dim = 16;
  config.rep.hidden_dim = 32;
  config.rep.rep_dim = 16;
  config.rep.max_epochs = 4;
  config.gbdt.num_trees = 80;
  config.max_user_tokens = 80;
  config.max_event_tokens = 96;

  Timer timer;
  pipeline::TwoStagePipeline pipeline(config);
  pipeline.Prepare();
  pipeline.TrainRepresentation();
  pipeline.ComputeRepVectors();
  std::printf("offline stages done in %.1fs\n", timer.ElapsedSeconds());

  baseline::FeatureConfig features;
  features.rep_vectors = true;
  gbdt::GbdtModel combiner;
  pipeline::EvalResult result =
      pipeline.EvaluateFeatureConfig(features, &combiner);
  std::printf("combiner eval: AUC=%.3f PR60=%.3f PR80=%.3f\n", result.auc,
              result.pr60, result.pr80);

  // ---- serve: recommend events for a few users on the last day ----
  const auto& dataset = pipeline.dataset();
  const int day = dataset.config.num_days - 1;
  std::vector<std::vector<int>> active =
      simnet::ActiveEventsByDay(dataset.events, dataset.config.num_days);
  const auto& candidates = active[static_cast<size_t>(day)];
  std::printf("\nserving day %d: %zu active candidate events\n", day,
              candidates.size());

  baseline::FeatureAssembler assembler(pipeline.feature_index(),
                                       &pipeline.user_reps(),
                                       &pipeline.event_reps());
  timer.Reset();
  int scored_pairs = 0;
  for (int user = 0; user < 3; ++user) {
    // Stage-1 retrieval: batched cosine over the cached vectors (8
    // candidates per kernel sweep), heap-selected top 40. The combiner
    // then ranks only the retrieved set.
    std::vector<serve::ScoredCandidate> retrieved =
        pipeline.RetrieveTopEvents(user, candidates, 40);
    std::vector<std::pair<double, int>> ranked;
    std::vector<float> row;
    for (const serve::ScoredCandidate& sc : retrieved) {
      row.clear();
      assembler.ExtractRow(user, sc.id, day, features, &row);
      ranked.emplace_back(combiner.PredictProbability(row.data()), sc.id);
      ++scored_pairs;
    }
    std::sort(ranked.rbegin(), ranked.rend());
    std::printf("user %d top events:\n", user);
    for (int k = 0; k < 3 && k < static_cast<int>(ranked.size()); ++k) {
      const auto& e = dataset.events[static_cast<size_t>(
          ranked[static_cast<size_t>(k)].second)];
      std::string title;
      for (const auto& w : e.title_words) {
        title += w;
        title += ' ';
      }
      std::printf("  p=%.3f [%s] %s\n", ranked[static_cast<size_t>(k)].first,
                  e.category_name.c_str(), title.c_str());
    }
  }
  double ms = timer.ElapsedMillis();
  std::printf("\nscored %d candidate pairs in %.1fms (%.2fms/pair) with "
              "cached vectors\n",
              scored_pairs, ms, ms / std::max(1, scored_pairs));
  auto stats = pipeline.cache_stats();
  std::printf("vector cache: %llu entries, hit rate %.2f\n",
              static_cast<unsigned long long>(stats.entries),
              stats.HitRate());
  return 0;
}
