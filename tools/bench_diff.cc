// bench_diff — compare two BENCH_*.json files (bench/common/bench_profile
// WriteBenchJson output) and fail on regressions.
//
//   bench_diff BASELINE.json CANDIDATE.json [--threshold P]
//
// Every headline metric (the "metrics" object) present in both files is
// compared. Direction is inferred from the name: metrics mentioning
// seconds/micros/time/loss are lower-is-better, everything else (AUC,
// precision, speedup, determinism flags) is higher-is-better. A relative
// worsening beyond the threshold (default 0.10 = 10%) is a regression and
// makes the exit status non-zero. "phase_seconds" entries are reported for
// context but never fail the diff (wall-clock phases are too noisy on
// shared hardware to gate on).

#include <sys/stat.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "evrec/util/json.h"
#include "evrec/util/string_util.h"

namespace {

using evrec::JsonValue;
using evrec::ParseJson;
using evrec::StatusOr;
using evrec::StrFormat;

StatusOr<JsonValue> LoadJsonFile(const std::string& path) {
  // Diagnose the argument before opening it: "parse error at byte 0" on a
  // directory or a missing file sends people down the wrong road.
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return evrec::Status::IoError("no such file: " + path);
  }
  if (S_ISDIR(st.st_mode)) {
    return evrec::Status::InvalidArgument(
        path + " is a directory, expected a BENCH_*.json file");
  }
  if (!S_ISREG(st.st_mode)) {
    return evrec::Status::InvalidArgument(path + " is not a regular file");
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return evrec::Status::IoError("cannot open " + path);
  }
  std::string text;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  StatusOr<JsonValue> parsed = ParseJson(text);
  if (!parsed.ok()) {
    return evrec::Status::InvalidArgument(
        path + ": malformed JSON (" + parsed.status().message() + ")");
  }
  return parsed;
}

bool LowerIsBetter(const std::string& name) {
  return name.find("seconds") != std::string::npos ||
         name.find("micros") != std::string::npos ||
         name.find("nanos") != std::string::npos ||
         name.find("ns_per_op") != std::string::npos ||
         name.find("time") != std::string::npos ||
         name.find("loss") != std::string::npos ||
         name.find("bytes") != std::string::npos;
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = 0.10;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold = std::atof(argv[++i]);
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.size() != 2) {
    std::fprintf(stderr,
                 "bench_diff: expected exactly two files, got %zu\n"
                 "usage: bench_diff BASELINE.json CANDIDATE.json "
                 "[--threshold P]\n",
                 files.size());
    return 1;
  }

  StatusOr<JsonValue> baseline = LoadJsonFile(files[0]);
  StatusOr<JsonValue> candidate = LoadJsonFile(files[1]);
  if (!baseline.ok() || !candidate.ok()) {
    std::fprintf(stderr, "bench_diff: %s\n",
                 (!baseline.ok() ? baseline.status() : candidate.status())
                     .ToString()
                     .c_str());
    return 1;
  }
  const JsonValue* base_metrics = baseline->Find("metrics");
  const JsonValue* cand_metrics = candidate->Find("metrics");
  if (base_metrics == nullptr || !base_metrics->IsObject() ||
      cand_metrics == nullptr || !cand_metrics->IsObject()) {
    std::fprintf(stderr, "bench_diff: missing \"metrics\" object\n");
    return 1;
  }

  std::printf("%-28s %12s %12s %9s  %s\n", "metric", "baseline",
              "candidate", "delta", "verdict");
  int regressions = 0;
  int compared = 0;
  for (const auto& [name, base_value] : base_metrics->object) {
    const JsonValue* cand_value = cand_metrics->Find(name);
    if (cand_value == nullptr || !cand_value->IsNumber() ||
        !base_value.IsNumber()) {
      continue;
    }
    ++compared;
    double b = base_value.number_value;
    double c = cand_value->number_value;
    const bool lower_better = LowerIsBetter(name);
    // Relative worsening; positive means the candidate is worse.
    double worsening;
    if (b == 0.0) {
      worsening = c == 0.0 ? 0.0 : (lower_better == (c > 0.0) ? 1.0 : -1.0);
    } else {
      double rel = (c - b) / std::fabs(b);
      worsening = lower_better ? rel : -rel;
    }
    const char* verdict = "ok";
    if (worsening > threshold) {
      verdict = "REGRESSION";
      ++regressions;
    } else if (worsening < -threshold) {
      verdict = "improved";
    }
    std::printf("%-28s %12.6g %12.6g %+8.1f%%  %s\n", name.c_str(), b, c,
                100.0 * (b == 0.0 ? worsening : (c - b) / std::fabs(b)),
                verdict);
  }

  const JsonValue* base_phases = baseline->Find("phase_seconds");
  const JsonValue* cand_phases = candidate->Find("phase_seconds");
  if (base_phases != nullptr && base_phases->IsObject() &&
      cand_phases != nullptr && cand_phases->IsObject()) {
    bool header = false;
    for (const auto& [name, base_value] : base_phases->object) {
      const JsonValue* cand_value = cand_phases->Find(name);
      if (cand_value == nullptr || !cand_value->IsNumber() ||
          !base_value.IsNumber()) {
        continue;
      }
      if (!header) {
        std::printf("\nphase_seconds (informational, never gates):\n");
        header = true;
      }
      std::printf("  %-26s %12.6g %12.6g\n", name.c_str(),
                  base_value.number_value, cand_value->number_value);
    }
  }

  if (compared == 0) {
    std::fprintf(stderr, "bench_diff: no shared numeric metrics\n");
    return 1;
  }
  std::printf("\n%d metric(s) compared, %d regression(s) beyond %.0f%%\n",
              compared, regressions, 100.0 * threshold);
  return regressions > 0 ? 1 : 0;
}
