// evrec_cli — command-line driver for the EvRec library.
//
// Subcommands:
//   generate --out DIR [--users N] [--events N] [--seed S]
//       Generate a synthetic social-network dataset and export it as TSV
//       (simnet/dataset_io.h describes the format; replace these files to
//       run on your own data).
//   train --data DIR --model FILE [--epochs N] [--siamese]
//         [--checkpoint-dir DIR] [--checkpoint-every N] [--resume]
//       Load a TSV dataset, train the joint representation model, and
//       serialize it.
//   eval --data DIR --model FILE [--features base+cf+rep]
//       Train the GBDT combiner on the week-5 split with the given feature
//       set and report AUC / PR60 / PR80 on the week-6 split.
//   search --data DIR --model FILE --event ID [--k K]
//       Related-event search: rank events by representation cosine to a
//       seed event (IVF index, 4 probes).
//   serve-demo [--users N] [--events N] [--seed S] [--error-rate P]
//              [--spike-rate P] [--spike-us U] [--corrupt-rate P]
//              [--budget-us U]
//       Train a small end-to-end system, then replay the week-6
//       impression log through the fault-tolerant RecommendationService
//       with the given fault-injection profile, on a simulated clock.
//       Prints the degradation-tier breakdown and retry/breaker counters.
//   metrics [same flags as serve-demo] [--json FILE]
//       Same fault-storm replay, but with the process-wide observability
//       clock pinned to the simulated clock; dumps the full metric
//       registry (training series, phase spans, per-tier latency
//       histograms with p50/p95/p99) and the trace-span tree. With
//       --json the registry snapshot is also written as deterministic
//       JSON: two runs with the same flags produce byte-identical files.
//   serve-demo ... [--trace-out FILE] [--trace-sample P] [--trace-seed S]
//       With --trace-out, the replay's request-scoped traces are exported
//       as Chrome trace-event JSON (open in Perfetto / chrome://tracing).
//       --trace-sample enables tail sampling: error/degraded/over-deadline
//       requests are always kept, the rest with probability P (seeded by
//       --trace-seed). Runs on the simulated clock: same flags => byte-
//       identical trace files, for any --threads value.
//   metrics ... [--format openmetrics] [--out FILE]
//       Prometheus/OpenMetrics text exposition of the whole registry
//       (counters, gauges, histogram bucket ladders with trace-exemplars).
//       env.* metrics are excluded, so the bytes are identical for any
//       --threads value.
//   monitor [serve-demo flags] [--out FILE]
//       Live-telemetry demo: replays the eval impressions healthy ->
//       fault-storm -> healthy on a paced simulated clock with rolling
//       windows, availability + latency SLOs under scaled multi-window
//       burn-rate rules, and component health probes. Prints a
//       deterministic report (live rates/percentiles, SLO table, alert
//       timeline, health verdicts, forced trace retention); --out writes
//       the OpenMetrics exposition including window rates. Exits non-zero
//       unless the storm drove an alert pending -> firing -> resolved.
//   trace FILE [--top N]
//       Analyze an exported Chrome trace: validate structure (monotone
//       timestamps, parent links, nesting), then print the per-trace
//       summary, the critical path of the slowest trace, the top-N
//       slowest spans, and a self-time flat profile. Exit 1 if the file
//       is malformed.
//
// Exit status 0 on success, 1 on bad usage or failure.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "evrec/ann/ivf_index.h"
#include "evrec/obs/health.h"
#include "evrec/obs/metrics.h"
#include "evrec/obs/monitor.h"
#include "evrec/obs/openmetrics.h"
#include "evrec/obs/profile.h"
#include "evrec/obs/slo.h"
#include "evrec/obs/trace.h"
#include "evrec/obs/trace_analysis.h"
#include "evrec/pipeline/pipeline.h"
#include "evrec/pipeline/serving.h"
#include "evrec/serve/fault_injector.h"
#include "evrec/simnet/dataset_io.h"
#include "evrec/util/checkpoint.h"
#include "evrec/util/logging.h"

namespace {

using namespace evrec;

// Minimal flag parsing: --name value pairs after the subcommand.
struct Args {
  std::string data, out, model, json, features = "base+cf+rep";
  int users = 1200, events = 1500, epochs = 8, event_id = 0, k = 5;
  // Worker threads for training and vector precompute. Results are
  // bit-identical for any value (see model/trainer.h); this only buys
  // wall-clock on multi-core machines.
  int threads = 1;
  uint64_t seed = 2017;
  bool siamese = false;
  // Crash-safe training: commit trainer state to `checkpoint_dir` every
  // `checkpoint_every` epochs; --resume continues an interrupted run from
  // the newest valid checkpoint with bit-identical results.
  std::string checkpoint_dir;
  int checkpoint_every = 1;
  bool resume = false;
  // serve-demo fault profile.
  double error_rate = 0.3, spike_rate = 0.1, corrupt_rate = 0.02;
  int64_t spike_us = 2000, budget_us = 20000;
  // Request-scoped tracing (serve-demo) and trace analysis (trace).
  std::string trace_out;
  double trace_sample = 1.0;
  uint64_t trace_seed = 1;
  int top = 10;
  // In-process profiling (serve-demo) and profile analysis (profile).
  // serve-demo profiles in deterministic mode (span-charged costs on the
  // simulated clock), so the exported profile is byte-identical across
  // runs and --threads values.
  std::string profile_out;
  int profile_hz = 100;
  bool folded = false;
  // metrics/monitor exposition format: "text" or "openmetrics".
  std::string format = "text";

  static bool Parse(int argc, char** argv, Args* out_args,
                    int start = 2) {
    for (int i = start; i < argc; ++i) {
      std::string flag = argv[i];
      auto next = [&]() -> const char* {
        return (i + 1 < argc) ? argv[++i] : nullptr;
      };
      if (flag == "--siamese") {
        out_args->siamese = true;
        continue;
      }
      if (flag == "--resume") {
        out_args->resume = true;
        continue;
      }
      if (flag == "--folded") {
        out_args->folded = true;
        continue;
      }
      const char* v = next();
      if (v == nullptr) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        return false;
      }
      if (flag == "--data") {
        out_args->data = v;
      } else if (flag == "--out") {
        out_args->out = v;
      } else if (flag == "--model") {
        out_args->model = v;
      } else if (flag == "--json") {
        out_args->json = v;
      } else if (flag == "--features") {
        out_args->features = v;
      } else if (flag == "--users") {
        out_args->users = std::atoi(v);
      } else if (flag == "--events") {
        out_args->events = std::atoi(v);
      } else if (flag == "--epochs") {
        out_args->epochs = std::atoi(v);
      } else if (flag == "--event") {
        out_args->event_id = std::atoi(v);
      } else if (flag == "--k") {
        out_args->k = std::atoi(v);
      } else if (flag == "--threads") {
        out_args->threads = std::atoi(v);
      } else if (flag == "--checkpoint-dir") {
        out_args->checkpoint_dir = v;
      } else if (flag == "--checkpoint-every") {
        out_args->checkpoint_every = std::atoi(v);
      } else if (flag == "--seed") {
        out_args->seed = static_cast<uint64_t>(std::atoll(v));
      } else if (flag == "--error-rate") {
        out_args->error_rate = std::atof(v);
      } else if (flag == "--spike-rate") {
        out_args->spike_rate = std::atof(v);
      } else if (flag == "--corrupt-rate") {
        out_args->corrupt_rate = std::atof(v);
      } else if (flag == "--spike-us") {
        out_args->spike_us = std::atoll(v);
      } else if (flag == "--budget-us") {
        out_args->budget_us = std::atoll(v);
      } else if (flag == "--trace-out") {
        out_args->trace_out = v;
      } else if (flag == "--trace-sample") {
        out_args->trace_sample = std::atof(v);
      } else if (flag == "--trace-seed") {
        out_args->trace_seed = static_cast<uint64_t>(std::atoll(v));
      } else if (flag == "--top") {
        out_args->top = std::atoi(v);
      } else if (flag == "--profile-out") {
        out_args->profile_out = v;
      } else if (flag == "--profile-hz") {
        out_args->profile_hz = std::atoi(v);
      } else if (flag == "--format") {
        out_args->format = v;
      } else {
        std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
        return false;
      }
    }
    return true;
  }
};

// A pipeline whose dataset comes from TSV files instead of the generator.
// We reuse TwoStagePipeline for the generated path; for the imported path
// the relevant stages are re-implemented here on top of the library API.
struct LoadedSystem {
  simnet::SimnetDataset dataset;
  pipeline::EncoderSet encoders;
  model::RepDataset rep_data;
  std::unique_ptr<model::JointModel> model;

  static StatusOr<LoadedSystem> Load(const std::string& dir,
                                     const model::JointModelConfig& cfg) {
    auto imported = simnet::ImportDataset(dir);
    if (!imported.ok()) return imported.status();
    LoadedSystem sys;
    sys.dataset = std::move(*imported);
    sys.encoders = pipeline::BuildEncoders(
        sys.dataset, sys.dataset.config.rep_train_days,
        cfg.min_document_frequency, cfg.max_vocabulary_size,
        cfg.max_df_fraction);
    for (const auto& user : sys.dataset.world.users) {
      sys.rep_data.user_inputs.push_back(
          sys.encoders.EncodeUser(user, sys.dataset.world.pages, 96));
    }
    for (const auto& event : sys.dataset.events) {
      sys.rep_data.event_inputs.push_back(
          sys.encoders.EncodeEvent(event, 128));
    }
    for (const auto& imp : sys.dataset.rep_train) {
      sys.rep_data.pairs.push_back({imp.user, imp.event, imp.label, 1.0f});
    }
    return sys;
  }

  void ComputeReps(std::vector<std::vector<float>>* users,
                   std::vector<std::vector<float>>* events) const {
    users->clear();
    events->clear();
    for (const auto& u : rep_data.user_inputs) {
      users->push_back(model->UserVector(u));
    }
    for (const auto& e : rep_data.event_inputs) {
      events->push_back(model->EventVector(e));
    }
  }
};

model::JointModelConfig CliModelConfig(int epochs) {
  model::JointModelConfig cfg;
  cfg.embedding_dim = 32;
  cfg.module_out_dim = 32;
  cfg.hidden_dim = 128;
  cfg.rep_dim = 64;
  cfg.max_epochs = epochs;
  cfg.early_stop_patience = 3;
  return cfg;
}

int CmdGenerate(const Args& args) {
  if (args.out.empty()) {
    std::fprintf(stderr, "generate: --out DIR required\n");
    return 1;
  }
  simnet::SimnetConfig cfg;
  cfg.seed = args.seed;
  cfg.num_users = args.users;
  cfg.num_events = args.events;
  simnet::SimnetDataset dataset = simnet::GenerateDataset(cfg);
  Status status = simnet::ExportDataset(dataset, args.out);
  if (!status.ok()) {
    std::fprintf(stderr, "export failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %d users / %d events / %zu+%zu+%zu impressions to %s\n",
              dataset.num_users(), dataset.num_events(),
              dataset.rep_train.size(), dataset.combiner_train.size(),
              dataset.eval.size(), args.out.c_str());
  return 0;
}

int CmdTrain(const Args& args) {
  if (args.data.empty() || args.model.empty()) {
    std::fprintf(stderr, "train: --data DIR and --model FILE required\n");
    return 1;
  }
  model::JointModelConfig cfg = CliModelConfig(args.epochs);
  auto sys = LoadedSystem::Load(args.data, cfg);
  if (!sys.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 sys.status().ToString().c_str());
    return 1;
  }
  sys->model = std::make_unique<model::JointModel>(
      cfg, sys->encoders.UserTextVocab(),
      sys->encoders.UserCategoricalVocab(), sys->encoders.EventTextVocab());
  Rng rng(cfg.seed, 5);
  sys->model->RandomInit(rng);
  sys->model->CalibrateNormalizers(sys->rep_data);

  // Optional crash-safe checkpointing: one manager per trainer, sharing the
  // directory under distinct prefixes so their retention never collides.
  std::unique_ptr<CheckpointManager> rep_ckpt, siamese_ckpt;
  if (!args.checkpoint_dir.empty()) {
    CheckpointOptions opt;
    opt.dir = args.checkpoint_dir;
    opt.prefix = "rep";
    rep_ckpt = std::make_unique<CheckpointManager>(opt);
    opt.prefix = "siamese";
    siamese_ckpt = std::make_unique<CheckpointManager>(opt);
    if (!rep_ckpt->init_status().ok()) {
      std::fprintf(stderr, "checkpoint dir unusable: %s\n",
                   rep_ckpt->init_status().ToString().c_str());
      return 1;
    }
  }

  if (args.siamese) {
    std::vector<text::EncodedText> titles, bodies;
    for (const auto& event : sys->dataset.events) {
      if (event.create_day >= sys->dataset.config.rep_train_days) continue;
      titles.push_back(sys->encoders.EncodeEventTitle(event, 128));
      bodies.push_back(sys->encoders.EncodeEventBody(event, 128));
    }
    model::SiameseConfig scfg;
    scfg.threads = args.threads;
    scfg.checkpoints = siamese_ckpt.get();
    scfg.checkpoint_every = args.checkpoint_every;
    scfg.resume = args.resume;
    Rng srng = rng.Fork(17);
    model::SiamesePretrain(&sys->model->mutable_event_tower(), titles,
                           bodies, scfg, srng);
  }

  model::TrainerConfig tcfg;
  tcfg.threads = args.threads;
  tcfg.checkpoints = rep_ckpt.get();
  tcfg.checkpoint_every = args.checkpoint_every;
  tcfg.resume = args.resume;
  model::RepTrainer trainer(sys->model.get(), tcfg);
  Rng train_rng = rng.Fork(29);
  model::TrainStats stats = trainer.Train(sys->rep_data, train_rng);
  std::printf("trained %d epochs, final train loss %.4f\n", stats.epochs_run,
              stats.train_loss.empty() ? 0.0 : stats.train_loss.back());

  BinaryWriter writer(args.model);
  sys->model->Serialize(writer);
  Status status = writer.Close();
  if (!status.ok()) {
    std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("model written to %s\n", args.model.c_str());
  return 0;
}

StatusOr<LoadedSystem> LoadWithModel(const Args& args) {
  model::JointModelConfig cfg = CliModelConfig(args.epochs);
  auto sys = LoadedSystem::Load(args.data, cfg);
  if (!sys.ok()) return sys.status();
  BinaryReader reader(args.model);
  model::JointModel loaded = model::JointModel::Deserialize(reader);
  if (!reader.ok()) return reader.status();
  sys->model = std::make_unique<model::JointModel>(std::move(loaded));
  return sys;
}

int CmdEval(const Args& args) {
  if (args.data.empty() || args.model.empty()) {
    std::fprintf(stderr, "eval: --data DIR and --model FILE required\n");
    return 1;
  }
  auto sys = LoadWithModel(args);
  if (!sys.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 sys.status().ToString().c_str());
    return 1;
  }
  std::vector<std::vector<float>> ureps, ereps;
  sys->ComputeReps(&ureps, &ereps);

  baseline::FeatureConfig features;
  features.base = args.features.find("base") != std::string::npos;
  features.cf = args.features.find("cf") != std::string::npos;
  features.rep_vectors = args.features.find("rep") != std::string::npos;
  features.rep_score = args.features.find("score") != std::string::npos;

  baseline::FeatureIndex index(sys->dataset);
  baseline::FeatureAssembler assembler(index, &ureps, &ereps);
  gbdt::DataMatrix train_x, eval_x;
  std::vector<float> train_y, eval_y;
  assembler.Assemble(sys->dataset.combiner_train, features, &train_x,
                     &train_y);
  assembler.Assemble(sys->dataset.eval, features, &eval_x, &eval_y);
  gbdt::GbdtModel combiner;
  gbdt::GbdtConfig gcfg;
  combiner.Train(train_x, train_y, gcfg);
  std::vector<double> probs = combiner.PredictProbabilities(eval_x);
  auto curve = eval::PrecisionRecallCurve(probs, eval_y);
  std::printf("[%s] AUC=%.3f PR60=%.3f PR80=%.3f (%d eval impressions)\n",
              features.Name().c_str(), eval::RocAuc(probs, eval_y),
              eval::PrecisionAtRecall(curve, 0.6),
              eval::PrecisionAtRecall(curve, 0.8), eval_x.num_rows());
  return 0;
}

int CmdSearch(const Args& args) {
  if (args.data.empty() || args.model.empty()) {
    std::fprintf(stderr, "search: --data DIR and --model FILE required\n");
    return 1;
  }
  auto sys = LoadWithModel(args);
  if (!sys.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 sys.status().ToString().c_str());
    return 1;
  }
  if (args.event_id < 0 || args.event_id >= sys->dataset.num_events()) {
    std::fprintf(stderr, "event id out of range\n");
    return 1;
  }
  std::vector<std::vector<float>> ureps, ereps;
  sys->ComputeReps(&ureps, &ereps);
  ann::IvfIndex index;
  ann::IvfConfig ivf;
  ivf.num_lists = 16;
  index.Build(ereps, ivf);
  auto results = index.Search(ereps[static_cast<size_t>(args.event_id)],
                              args.k, /*nprobe=*/4, args.event_id);
  const auto& seed = sys->dataset.events[static_cast<size_t>(args.event_id)];
  std::printf("seed [%s]:", seed.category_name.c_str());
  for (const auto& w : seed.title_words) std::printf(" %s", w.c_str());
  std::printf("\n");
  for (const auto& r : results) {
    const auto& e = sys->dataset.events[static_cast<size_t>(r.id)];
    std::printf("  %.3f [%s]", r.score, e.category_name.c_str());
    for (const auto& w : e.title_words) std::printf(" %s", w.c_str());
    std::printf("\n");
  }
  return 0;
}

// Outcome of a fault-storm replay (shared by serve-demo and metrics).
struct FaultStormResult {
  serve::ServeStats stats;
  const char* breaker_state = "";
  int incomplete = 0;
  int64_t worst_overshoot = 0;
  bool complete() const {
    return incomplete == 0 && stats.TotalServed() == stats.candidates;
  }
};

// Tiny end-to-end system shared by the serve-demo/metrics/monitor replay
// commands: trained pipeline, serving bundle, and the week-6 impressions
// grouped into one ranking request per (user, day).
struct DemoSystem {
  std::unique_ptr<pipeline::TwoStagePipeline> pipeline;
  pipeline::ServingBundle bundle;
  std::map<std::pair<int, int>, std::vector<int>> requests;
};

DemoSystem BuildDemoSystem(const Args& args) {
  pipeline::PipelineConfig cfg;
  cfg.simnet = simnet::TinySimnetConfig();
  cfg.simnet.seed = args.seed;
  cfg.rep.embedding_dim = 16;
  cfg.rep.module_out_dim = 16;
  cfg.rep.hidden_dim = 32;
  cfg.rep.rep_dim = 16;
  cfg.rep.text_windows = {1, 3};
  cfg.rep.max_epochs = std::min(args.epochs, 4);
  cfg.rep.min_document_frequency = 2;
  cfg.gbdt.num_trees = 50;
  cfg.gbdt.max_leaves = 8;
  cfg.gbdt.min_samples_leaf = 10;
  cfg.max_user_tokens = 64;
  cfg.max_event_tokens = 64;
  cfg.threads = args.threads;

  std::printf("training a small end-to-end system (seed=%llu)...\n",
              static_cast<unsigned long long>(args.seed));
  DemoSystem sys;
  sys.pipeline = std::make_unique<pipeline::TwoStagePipeline>(cfg);
  sys.pipeline->Prepare();
  sys.pipeline->TrainRepresentation();
  sys.pipeline->ComputeRepVectors();

  baseline::FeatureConfig features;
  features.base = true;
  features.cf = true;
  features.rep_score = true;
  sys.bundle = pipeline::BuildServingBundle(*sys.pipeline, features);

  for (const auto& imp : sys.pipeline->dataset().eval) {
    sys.requests[{imp.user, imp.day}].push_back(imp.event);
  }
  return sys;
}

// Burn-rate ladders scaled so an episode plays out in simulated seconds
// (the production shape is DefaultBurnRateRules(): 5m/1h + 6h/3d). Shared
// by the monitor demo and the profiled serve-demo replay.
std::vector<obs::BurnRateRule> ScaledDemoRules() {
  std::vector<obs::BurnRateRule> rules(2);
  rules[0].name = "fast";
  rules[0].short_window_micros = 5 * 1000000LL;
  rules[0].long_window_micros = 20 * 1000000LL;
  rules[0].threshold = 5.0;
  rules[0].pending_micros = 2 * 1000000LL;
  rules[0].resolve_micros = 10 * 1000000LL;
  rules[1].name = "slow";
  rules[1].short_window_micros = 20 * 1000000LL;
  rules[1].long_window_micros = 100 * 1000000LL;
  rules[1].threshold = 1.0;
  rules[1].pending_micros = 5 * 1000000LL;
  rules[1].resolve_micros = 20 * 1000000LL;
  return rules;
}

// The demo's two objectives: availability at 95% and latency-under-budget
// at 90%, both under the scaled rule ladder.
void AddDemoObjectives(obs::SloEngine* slo, const obs::WindowOptions& window,
                       int64_t budget_us) {
  std::vector<obs::BurnRateRule> rules = ScaledDemoRules();

  obs::SloConfig availability;
  availability.name = "availability";
  availability.kind = obs::SloKind::kAvailability;
  availability.objective = 0.95;
  availability.window = window;
  availability.rules = rules;
  slo->AddObjective(availability);

  obs::SloConfig latency;
  latency.name = "latency";
  latency.kind = obs::SloKind::kLatency;
  latency.objective = 0.9;
  latency.latency_threshold_micros = budget_us;
  latency.window = window;
  latency.rules = rules;
  slo->AddObjective(latency);
}

// Trains a tiny end-to-end system, then replays the week-6 (eval-split)
// impressions as ranking requests through the fault-tolerant serving
// layer, with deterministic fault injection on `clock`.
//
// With --profile-out the whole run (training included) is profiled in
// deterministic mode, and the replay is paced at ~4 requests per simulated
// second under the monitor demo's SLO engine: the storm-grade fault rates
// drive an alert to firing, and the profiler force-retains the degraded
// requests' trace ids in its request table (parity with trace retention).
FaultStormResult RunFaultStorm(const Args& args, serve::FakeClock* clock) {
  const bool profiling = !args.profile_out.empty();
  if (profiling) {
    obs::ProfileConfig pcfg;
    pcfg.sample_hz = args.profile_hz;
    obs::Profiler::Global()->StartDeterministic(pcfg);
  }

  DemoSystem sys = BuildDemoSystem(args);

  std::unique_ptr<obs::SloEngine> slo;
  if (profiling) {
    obs::WindowOptions window;
    window.bucket_width_micros = 1000000;
    window.num_buckets = 128;
    slo = std::make_unique<obs::SloEngine>(clock);
    AddDemoObjectives(slo.get(), window, args.budget_us);
  }

  serve::FaultConfig fault_cfg;
  fault_cfg.transient_error_rate = args.error_rate;
  fault_cfg.latency_spike_rate = args.spike_rate;
  fault_cfg.latency_spike_micros = args.spike_us;
  fault_cfg.corruption_rate = args.corrupt_rate;
  fault_cfg.base_latency_micros = 100;
  fault_cfg.seed = args.seed;
  serve::FaultInjector injector(fault_cfg);
  serve::FaultyVectorStore faulty_store(sys.bundle.store.get(), &injector,
                                        clock);

  serve::ServiceConfig service_cfg;
  service_cfg.default_budget_micros = args.budget_us;
  serve::RecommendationService::Backends backends =
      sys.bundle.MakeBackends(clock, &faulty_store);
  if (slo != nullptr) backends.slo = slo.get();
  serve::RecommendationService service(backends, service_cfg);

  std::printf("replaying %zu requests (error-rate=%.2f spike-rate=%.2f "
              "spike=%lldus corrupt-rate=%.2f budget=%lldus)...\n",
              sys.requests.size(), args.error_rate, args.spike_rate,
              static_cast<long long>(args.spike_us), args.corrupt_rate,
              static_cast<long long>(args.budget_us));
  FaultStormResult result;
  for (const auto& [key, candidates] : sys.requests) {
    // Profiled replays pace the simulated clock (~4 requests/s) so the
    // SLO burn-rate windows see sustained degradation and fire.
    if (profiling) clock->Advance(250000);
    serve::RankResponse resp =
        service.Rank(key.first, candidates, key.second, args.budget_us);
    if (resp.ranking.size() != candidates.size()) ++result.incomplete;
    result.worst_overshoot = std::max(result.worst_overshoot,
                                      resp.elapsed_micros - args.budget_us);
  }
  result.stats = service.lifetime_stats();
  result.breaker_state = serve::CircuitStateName(service.breaker().state());
  return result;
}

int CmdServeDemo(const Args& args) {
  serve::FakeClock clock;
  // Spans read the simulated clock: with fixed flags the exported trace
  // is byte-identical across runs and across --threads values.
  obs::SetClock(&clock);
  obs::TailSamplerConfig sampler;
  sampler.keep_fraction = args.trace_sample;
  sampler.seed = args.trace_seed;
  obs::TraceLog::Global()->SetSampler(sampler);
  FaultStormResult result = RunFaultStorm(args, &clock);

  const serve::ServeStats& stats = result.stats;
  std::printf("\n%s\n", stats.ToString().c_str());
  std::printf("degradation tiers: cached=%llu recomputed=%llu "
              "baseline-only=%llu prior=%llu (of %llu candidates)\n",
              static_cast<unsigned long long>(stats.tier_served[0]),
              static_cast<unsigned long long>(stats.tier_served[1]),
              static_cast<unsigned long long>(stats.tier_served[2]),
              static_cast<unsigned long long>(stats.tier_served[3]),
              static_cast<unsigned long long>(stats.candidates));
  std::printf("breaker state: %s, incomplete rankings: %d, "
              "worst deadline overshoot: %lldus\n",
              result.breaker_state, result.incomplete,
              static_cast<long long>(result.worst_overshoot));
  if (!args.trace_out.empty()) {
    obs::TraceLog* log = obs::TraceLog::Global();
    Status status = log->DumpChromeTrace(args.trace_out);
    if (!status.ok()) {
      std::fprintf(stderr, "serve-demo: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("trace: %zu spans retained, %llu traces sampled out, "
                "%llu spans dropped -> %s\n",
                log->size(),
                static_cast<unsigned long long>(log->sampled_out()),
                static_cast<unsigned long long>(log->dropped()),
                args.trace_out.c_str());
  }
  if (!args.profile_out.empty()) {
    obs::Profiler* profiler = obs::Profiler::Global();
    profiler->Stop();
    Status status = profiler->WriteText(args.profile_out);
    if (!status.ok()) {
      std::fprintf(stderr, "serve-demo: %s\n", status.ToString().c_str());
      return 1;
    }
    const std::vector<obs::ProfileRequestEntry> requests =
        profiler->RequestEntries();
    std::printf("profile: %zu stacks, %llu samples, %zu requests "
                "(%llu slo-forced) -> %s\n",
                profiler->StackEntries().size(),
                static_cast<unsigned long long>(profiler->total_samples()),
                requests.size(),
                static_cast<unsigned long long>(
                    profiler->forced_requests()),
                args.profile_out.c_str());
  }
  if (!result.complete()) {
    std::fprintf(stderr, "serve-demo: degradation chain failed to cover "
                         "every candidate\n");
    return 1;
  }
  return 0;
}

// Fault-storm replay with the process-wide observability clock pinned to
// the replay's simulated clock, so every span duration, training series
// and latency histogram in the dump is a pure function of the flags —
// two invocations produce byte-identical --json output.
int CmdMetrics(const Args& args) {
  if (args.format != "text" && args.format != "openmetrics") {
    std::fprintf(stderr, "metrics: unknown --format '%s' "
                         "(expected text or openmetrics)\n",
                 args.format.c_str());
    return 1;
  }
  serve::FakeClock clock;
  obs::SetClock(&clock);
  FaultStormResult result = RunFaultStorm(args, &clock);

  if (args.format == "openmetrics") {
    // Scrape-format exposition of the whole registry. env.* metrics are
    // excluded (see obs/openmetrics.h), so the bytes are identical for any
    // --threads value; --out writes them to a file for diffing.
    std::string text =
        obs::ToOpenMetricsString(*obs::MetricRegistry::Global());
    if (args.out.empty()) {
      std::fwrite(text.data(), 1, text.size(), stdout);
    } else {
      std::FILE* f = std::fopen(args.out.c_str(), "wb");
      if (f == nullptr) {
        std::fprintf(stderr, "metrics: cannot open %s\n", args.out.c_str());
        return 1;
      }
      size_t written = std::fwrite(text.data(), 1, text.size(), f);
      int close_rc = std::fclose(f);
      if (written != text.size() || close_rc != 0) {
        std::fprintf(stderr, "metrics: short write to %s\n",
                     args.out.c_str());
        return 1;
      }
      std::printf("wrote OpenMetrics exposition to %s\n", args.out.c_str());
    }
  } else {
    std::printf("\n");
    obs::MetricRegistry::Global()->DumpText(std::cout);
    std::printf("\n-- trace spans --\n");
    obs::TraceLog::Global()->DumpText(std::cout);
  }

  if (!args.json.empty()) {
    Status status = obs::MetricRegistry::Global()->DumpJson(args.json);
    if (!status.ok()) {
      std::fprintf(stderr, "metrics: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("\nwrote registry snapshot to %s\n", args.json.c_str());
  }
  if (!result.complete()) {
    std::fprintf(stderr, "metrics: degradation chain failed to cover "
                         "every candidate\n");
    return 1;
  }
  return 0;
}

// Delegates lookups to a swappable backing store; the monitor demo swaps
// a healthy store for a faulty one to open and close a degradation
// episode.
class SwitchableStore : public serve::VectorStore {
 public:
  explicit SwitchableStore(serve::VectorStore* inner) : inner_(inner) {}
  void Set(serve::VectorStore* inner) { inner_ = inner; }

  StatusOr<std::vector<float>> Get(store::EntityKind kind,
                                   int id) override {
    return inner_->Get(kind, id);
  }
  void Put(store::EntityKind kind, int id,
           std::vector<float> vector) override {
    inner_->Put(kind, id, std::move(vector));
  }

 private:
  serve::VectorStore* inner_;
};

// Live-monitoring demo: replays the eval impressions through the serving
// layer three times — healthy, fault storm, healthy again — on a paced
// simulated clock, with rolling-window metrics, two SLOs (availability +
// latency) under scaled burn-rate rules, and the component health probes
// wired in. Prints a deterministic status report: same flags => identical
// bytes, for any --threads value. Exits non-zero unless the storm drove
// an alert through pending -> firing -> resolved with the episode's
// traces force-retained.
int CmdMonitor(const Args& args) {
  serve::FakeClock clock;
  obs::SetClock(&clock);
  obs::TailSamplerConfig sampler;
  sampler.keep_fraction = args.trace_sample;
  sampler.seed = args.trace_seed;
  obs::TraceLog::Global()->SetSampler(sampler);

  DemoSystem sys = BuildDemoSystem(args);

  // Live telemetry: 1s buckets, 128s of lookback.
  obs::WindowOptions window;
  window.bucket_width_micros = 1000000;
  window.num_buckets = 128;
  obs::Monitor monitor(&clock, window);
  obs::HealthRegistry health;
  obs::SloEngine slo(&clock);

  AddDemoObjectives(&slo, window, args.budget_us);

  sys.pipeline->RegisterHealthProbes(&health);

  // Two stores over the same cache: one healthy (base latency only), one
  // with the configured fault profile; phases swap which one serves.
  serve::FaultConfig healthy_cfg;
  healthy_cfg.base_latency_micros = 100;
  healthy_cfg.seed = args.seed;
  serve::FaultInjector healthy_injector(healthy_cfg);
  serve::FaultyVectorStore healthy_store(sys.bundle.store.get(),
                                         &healthy_injector, &clock);
  serve::FaultConfig storm_cfg = healthy_cfg;
  storm_cfg.transient_error_rate = args.error_rate;
  storm_cfg.latency_spike_rate = args.spike_rate;
  storm_cfg.latency_spike_micros = args.spike_us;
  storm_cfg.corruption_rate = args.corrupt_rate;
  serve::FaultInjector storm_injector(storm_cfg);
  serve::FaultyVectorStore storm_store(sys.bundle.store.get(),
                                       &storm_injector, &clock);
  SwitchableStore switchable(&healthy_store);

  serve::ServiceConfig service_cfg;
  service_cfg.default_budget_micros = args.budget_us;
  serve::RecommendationService::Backends backends =
      sys.bundle.MakeBackends(&clock, &switchable);
  backends.monitor = &monitor;
  backends.slo = &slo;
  backends.health = &health;
  serve::RecommendationService service(backends, service_cfg);

  // ~4 requests per simulated second.
  const int64_t request_gap_micros = 250000;
  auto replay = [&](const char* phase) {
    std::printf("phase %-8s t=%.1fs..", phase,
                static_cast<double>(clock.NowMicros()) / 1e6);
    for (const auto& [key, candidates] : sys.requests) {
      clock.Advance(request_gap_micros);
      service.Rank(key.first, candidates, key.second, args.budget_us);
    }
    std::printf("%.1fs  aggregate health: %s\n",
                static_cast<double>(clock.NowMicros()) / 1e6,
                obs::HealthStatusName(health.Aggregate()));
  };

  std::printf("monitoring %zu requests/phase (error-rate=%.2f "
              "spike-rate=%.2f corrupt-rate=%.2f budget=%lldus)\n",
              sys.requests.size(), args.error_rate, args.spike_rate,
              args.corrupt_rate, static_cast<long long>(args.budget_us));
  replay("healthy");
  switchable.Set(&storm_store);
  replay("storm");
  switchable.Set(&healthy_store);
  replay("recovery");

  // Idle drain: tick until every alert quiets down (bounded).
  int drain_ticks = 0;
  while (slo.AnyFiring() && drain_ticks < 600) {
    clock.Advance(1000000);
    slo.Tick();
    ++drain_ticks;
  }
  for (int i = 0; i < 30; ++i) {  // let resolved states expire to inactive
    clock.Advance(1000000);
    slo.Tick();
  }

  const int64_t report_window = 60 * 1000000LL;
  obs::HistogramSnapshot lat = monitor.GetHistogram("serve.request.micros")
                                   ->Snapshot(report_window);
  std::printf("\n== live metrics (last 60s of t=%.1fs) ==\n",
              static_cast<double>(clock.NowMicros()) / 1e6);
  std::printf("  serve.requests rate: %s/s\n",
              obs::FormatMetricValue(
                  monitor.GetCounter("serve.requests")->Rate(report_window))
                  .c_str());
  std::printf("  serve.request.micros p50/p95/p99: %s / %s / %s\n",
              obs::FormatMetricValue(lat.p50).c_str(),
              obs::FormatMetricValue(lat.p95).c_str(),
              obs::FormatMetricValue(lat.p99).c_str());

  std::printf("\n== slo status ==\n");
  slo.DumpStatus(std::cout);
  std::printf("\n== alert timeline ==\n");
  slo.DumpTimeline(std::cout);
  std::printf("\n== health probes ==\n");
  health.DumpStatus(std::cout);
  std::printf("\n== trace retention ==\n");
  std::printf("  traces force-retained while firing: %llu\n",
              static_cast<unsigned long long>(slo.traces_marked()));

  if (!args.out.empty()) {
    // Full exposition including the rolling-window rates/quantiles.
    std::string text =
        obs::ToOpenMetricsString(*obs::MetricRegistry::Global(), &monitor);
    std::FILE* f = std::fopen(args.out.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "monitor: cannot open %s\n", args.out.c_str());
      return 1;
    }
    size_t written = std::fwrite(text.data(), 1, text.size(), f);
    int close_rc = std::fclose(f);
    if (written != text.size() || close_rc != 0) {
      std::fprintf(stderr, "monitor: short write to %s\n",
                   args.out.c_str());
      return 1;
    }
    std::printf("\nwrote OpenMetrics exposition to %s\n", args.out.c_str());
  }

  // The demo is only a success if the storm drove a full alert lifecycle.
  bool saw_pending = false, saw_firing = false, saw_resolved = false;
  for (const obs::AlertEvent& e : slo.Timeline()) {
    if (e.to == obs::AlertState::kPending) saw_pending = true;
    if (e.to == obs::AlertState::kFiring) saw_firing = true;
    if (e.to == obs::AlertState::kResolved) saw_resolved = true;
  }
  if (!saw_pending || !saw_firing || !saw_resolved ||
      slo.traces_marked() == 0 || slo.AnyFiring()) {
    std::fprintf(stderr,
                 "monitor: incomplete alert lifecycle "
                 "(pending=%d firing=%d resolved=%d marked=%llu "
                 "still_firing=%d)\n",
                 saw_pending, saw_firing, saw_resolved,
                 static_cast<unsigned long long>(slo.traces_marked()),
                 slo.AnyFiring());
    return 1;
  }

  sys.pipeline->UnregisterHealthProbes(&health);
  return 0;
}

// Validates and analyzes a Chrome trace exported by serve-demo. The
// report is deterministic for a deterministic trace file: spans are
// re-sorted canonically and thread ids ignored, so traces captured with
// different --threads values analyze identically.
int CmdTrace(const std::string& path, const Args& args) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "trace: cannot open %s\n", path.c_str());
    return 1;
  }
  std::string text;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);

  auto spans = obs::ParseChromeTrace(text);
  if (!spans.ok()) {
    std::fprintf(stderr, "trace: %s\n",
                 spans.status().ToString().c_str());
    return 1;
  }
  Status valid = obs::ValidateSpans(*spans);
  if (!valid.ok()) {
    std::fprintf(stderr, "trace: invalid: %s\n",
                 valid.ToString().c_str());
    return 1;
  }
  obs::TraceAnalysisOptions options;
  options.top_n = args.top;
  obs::AnalyzeSpans(*spans, options, std::cout);
  return 0;
}

// Analyzes a text profile exported by `serve-demo --profile-out`. The
// report depends only on the profile contents (never on thread ordinals
// or record order), so profiles captured with different --threads values
// analyze identically. --folded re-emits flamegraph.pl input instead.
int CmdProfile(const std::string& path, const Args& args) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "profile: cannot open %s\n", path.c_str());
    return 1;
  }
  std::string text;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);

  auto profile = obs::ParseProfileText(text);
  if (!profile.ok()) {
    std::fprintf(stderr, "profile: %s\n",
                 profile.status().ToString().c_str());
    return 1;
  }
  if (args.folded) {
    obs::WriteFoldedFromParsed(*profile, std::cout);
    return 0;
  }
  obs::ProfileReportOptions options;
  options.top_n = args.top;
  obs::WriteProfileReport(*profile, options, std::cout);
  return 0;
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: evrec_cli <subcommand> [flags]\n"
      "\n"
      "subcommands:\n"
      "  generate    write a synthetic SimNet dataset to --out DIR\n"
      "  train       train the two-stage model on --data, save to --model\n"
      "  eval        score a trained --model on the held-out week\n"
      "  search      ANN nearest-event lookup around --event in rep space\n"
      "  serve-demo  fault-storm replay through the degradation chain\n"
      "  metrics     serve-demo + full metric-registry exposition\n"
      "  monitor     healthy/storm/recovery replay with SLO alerts\n"
      "  trace       analyze a Chrome trace exported by serve-demo\n"
      "  profile     analyze a profile exported by serve-demo\n"
      "\n"
      "  generate   --out DIR [--users N] [--events N] [--seed S]\n"
      "  train      --data DIR --model FILE [--epochs N] [--siamese]\n"
      "             [--threads N]  (data-parallel; same results for any N)\n"
      "             [--checkpoint-dir DIR] [--checkpoint-every N] [--resume]\n"
      "             (crash-safe: resumed runs are bit-identical)\n"
      "  eval       --data DIR --model FILE [--features base+cf+rep+score]\n"
      "  search     --data DIR --model FILE --event ID [--k K]\n"
      "  serve-demo [--seed S] [--error-rate P] [--spike-rate P]\n"
      "             [--spike-us U] [--corrupt-rate P] [--budget-us U]\n"
      "             [--trace-out FILE] [--trace-sample P] [--trace-seed S]\n"
      "             [--profile-out FILE] [--profile-hz N]\n"
      "             (deterministic profile of the whole run; the paced\n"
      "             replay drives an SLO alert so degraded requests are\n"
      "             force-retained in the profile's request table)\n"
      "  metrics    [serve-demo flags] [--json FILE]\n"
      "             [--format text|openmetrics] [--out FILE]\n"
      "  monitor    [serve-demo flags] [--out FILE]\n"
      "             (healthy/storm/recovery replay with rolling-window\n"
      "             metrics, SLO burn-rate alerts, health probes; --out\n"
      "             writes the OpenMetrics exposition)\n"
      "  trace      FILE [--top N]  (analyze an exported Chrome trace)\n"
      "  profile    FILE [--top N] [--folded]  (top-N self/total time and\n"
      "             allocation tables; --folded emits flamegraph input)\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 1;
  }
  SetLogLevel(LogLevel::kWarn);
  std::string cmd = argv[1];
  if (cmd == "trace" || cmd == "profile") {
    // Positional file argument, then flags.
    if (argc < 3 || argv[2][0] == '-') {
      Usage();
      return 1;
    }
    Args args;
    if (!Args::Parse(argc, argv, &args, /*start=*/3)) {
      Usage();
      return 1;
    }
    return cmd == "trace" ? CmdTrace(argv[2], args)
                          : CmdProfile(argv[2], args);
  }
  Args args;
  if (!Args::Parse(argc, argv, &args)) {
    Usage();
    return 1;
  }
  if (cmd == "generate") return CmdGenerate(args);
  if (cmd == "train") return CmdTrain(args);
  if (cmd == "eval") return CmdEval(args);
  if (cmd == "search") return CmdSearch(args);
  if (cmd == "serve-demo") return CmdServeDemo(args);
  if (cmd == "metrics") return CmdMetrics(args);
  if (cmd == "monitor") return CmdMonitor(args);
  std::fprintf(stderr, "evrec_cli: unknown subcommand '%s'\n\n",
               cmd.c_str());
  Usage();
  return 1;
}
