// evrec_cli — command-line driver for the EvRec library.
//
// Subcommands:
//   generate --out DIR [--users N] [--events N] [--seed S]
//       Generate a synthetic social-network dataset and export it as TSV
//       (simnet/dataset_io.h describes the format; replace these files to
//       run on your own data).
//   train --data DIR --model FILE [--epochs N] [--siamese]
//       Load a TSV dataset, train the joint representation model, and
//       serialize it.
//   eval --data DIR --model FILE [--features base+cf+rep]
//       Train the GBDT combiner on the week-5 split with the given feature
//       set and report AUC / PR60 / PR80 on the week-6 split.
//   search --data DIR --model FILE --event ID [--k K]
//       Related-event search: rank events by representation cosine to a
//       seed event (IVF index, 4 probes).
//
// Exit status 0 on success, 1 on bad usage or failure.

#include <cstdio>
#include <cstring>
#include <string>

#include "evrec/ann/ivf_index.h"
#include "evrec/pipeline/pipeline.h"
#include "evrec/simnet/dataset_io.h"
#include "evrec/util/logging.h"

namespace {

using namespace evrec;

// Minimal flag parsing: --name value pairs after the subcommand.
struct Args {
  std::string data, out, model, features = "base+cf+rep";
  int users = 1200, events = 1500, epochs = 8, event_id = 0, k = 5;
  uint64_t seed = 2017;
  bool siamese = false;

  static bool Parse(int argc, char** argv, Args* out_args) {
    for (int i = 2; i < argc; ++i) {
      std::string flag = argv[i];
      auto next = [&]() -> const char* {
        return (i + 1 < argc) ? argv[++i] : nullptr;
      };
      if (flag == "--siamese") {
        out_args->siamese = true;
        continue;
      }
      const char* v = next();
      if (v == nullptr) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        return false;
      }
      if (flag == "--data") {
        out_args->data = v;
      } else if (flag == "--out") {
        out_args->out = v;
      } else if (flag == "--model") {
        out_args->model = v;
      } else if (flag == "--features") {
        out_args->features = v;
      } else if (flag == "--users") {
        out_args->users = std::atoi(v);
      } else if (flag == "--events") {
        out_args->events = std::atoi(v);
      } else if (flag == "--epochs") {
        out_args->epochs = std::atoi(v);
      } else if (flag == "--event") {
        out_args->event_id = std::atoi(v);
      } else if (flag == "--k") {
        out_args->k = std::atoi(v);
      } else if (flag == "--seed") {
        out_args->seed = static_cast<uint64_t>(std::atoll(v));
      } else {
        std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
        return false;
      }
    }
    return true;
  }
};

// A pipeline whose dataset comes from TSV files instead of the generator.
// We reuse TwoStagePipeline for the generated path; for the imported path
// the relevant stages are re-implemented here on top of the library API.
struct LoadedSystem {
  simnet::SimnetDataset dataset;
  pipeline::EncoderSet encoders;
  model::RepDataset rep_data;
  std::unique_ptr<model::JointModel> model;

  static StatusOr<LoadedSystem> Load(const std::string& dir,
                                     const model::JointModelConfig& cfg) {
    auto imported = simnet::ImportDataset(dir);
    if (!imported.ok()) return imported.status();
    LoadedSystem sys;
    sys.dataset = std::move(*imported);
    sys.encoders = pipeline::BuildEncoders(
        sys.dataset, sys.dataset.config.rep_train_days,
        cfg.min_document_frequency, cfg.max_vocabulary_size,
        cfg.max_df_fraction);
    for (const auto& user : sys.dataset.world.users) {
      sys.rep_data.user_inputs.push_back(
          sys.encoders.EncodeUser(user, sys.dataset.world.pages, 96));
    }
    for (const auto& event : sys.dataset.events) {
      sys.rep_data.event_inputs.push_back(
          sys.encoders.EncodeEvent(event, 128));
    }
    for (const auto& imp : sys.dataset.rep_train) {
      sys.rep_data.pairs.push_back({imp.user, imp.event, imp.label, 1.0f});
    }
    return sys;
  }

  void ComputeReps(std::vector<std::vector<float>>* users,
                   std::vector<std::vector<float>>* events) const {
    users->clear();
    events->clear();
    for (const auto& u : rep_data.user_inputs) {
      users->push_back(model->UserVector(u));
    }
    for (const auto& e : rep_data.event_inputs) {
      events->push_back(model->EventVector(e));
    }
  }
};

model::JointModelConfig CliModelConfig(int epochs) {
  model::JointModelConfig cfg;
  cfg.embedding_dim = 32;
  cfg.module_out_dim = 32;
  cfg.hidden_dim = 128;
  cfg.rep_dim = 64;
  cfg.max_epochs = epochs;
  cfg.early_stop_patience = 3;
  return cfg;
}

int CmdGenerate(const Args& args) {
  if (args.out.empty()) {
    std::fprintf(stderr, "generate: --out DIR required\n");
    return 1;
  }
  simnet::SimnetConfig cfg;
  cfg.seed = args.seed;
  cfg.num_users = args.users;
  cfg.num_events = args.events;
  simnet::SimnetDataset dataset = simnet::GenerateDataset(cfg);
  Status status = simnet::ExportDataset(dataset, args.out);
  if (!status.ok()) {
    std::fprintf(stderr, "export failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %d users / %d events / %zu+%zu+%zu impressions to %s\n",
              dataset.num_users(), dataset.num_events(),
              dataset.rep_train.size(), dataset.combiner_train.size(),
              dataset.eval.size(), args.out.c_str());
  return 0;
}

int CmdTrain(const Args& args) {
  if (args.data.empty() || args.model.empty()) {
    std::fprintf(stderr, "train: --data DIR and --model FILE required\n");
    return 1;
  }
  model::JointModelConfig cfg = CliModelConfig(args.epochs);
  auto sys = LoadedSystem::Load(args.data, cfg);
  if (!sys.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 sys.status().ToString().c_str());
    return 1;
  }
  sys->model = std::make_unique<model::JointModel>(
      cfg, sys->encoders.UserTextVocab(),
      sys->encoders.UserCategoricalVocab(), sys->encoders.EventTextVocab());
  Rng rng(cfg.seed, 5);
  sys->model->RandomInit(rng);
  sys->model->CalibrateNormalizers(sys->rep_data);

  if (args.siamese) {
    std::vector<text::EncodedText> titles, bodies;
    for (const auto& event : sys->dataset.events) {
      if (event.create_day >= sys->dataset.config.rep_train_days) continue;
      titles.push_back(sys->encoders.EncodeEventTitle(event, 128));
      bodies.push_back(sys->encoders.EncodeEventBody(event, 128));
    }
    model::SiameseConfig scfg;
    Rng srng = rng.Fork(17);
    model::SiamesePretrain(&sys->model->mutable_event_tower(), titles,
                           bodies, scfg, srng);
  }

  model::RepTrainer trainer(sys->model.get());
  Rng train_rng = rng.Fork(29);
  model::TrainStats stats = trainer.Train(sys->rep_data, train_rng);
  std::printf("trained %d epochs, final train loss %.4f\n", stats.epochs_run,
              stats.train_loss.empty() ? 0.0 : stats.train_loss.back());

  BinaryWriter writer(args.model);
  sys->model->Serialize(writer);
  Status status = writer.Close();
  if (!status.ok()) {
    std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("model written to %s\n", args.model.c_str());
  return 0;
}

StatusOr<LoadedSystem> LoadWithModel(const Args& args) {
  model::JointModelConfig cfg = CliModelConfig(args.epochs);
  auto sys = LoadedSystem::Load(args.data, cfg);
  if (!sys.ok()) return sys.status();
  BinaryReader reader(args.model);
  model::JointModel loaded = model::JointModel::Deserialize(reader);
  if (!reader.ok()) return reader.status();
  sys->model = std::make_unique<model::JointModel>(std::move(loaded));
  return sys;
}

int CmdEval(const Args& args) {
  if (args.data.empty() || args.model.empty()) {
    std::fprintf(stderr, "eval: --data DIR and --model FILE required\n");
    return 1;
  }
  auto sys = LoadWithModel(args);
  if (!sys.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 sys.status().ToString().c_str());
    return 1;
  }
  std::vector<std::vector<float>> ureps, ereps;
  sys->ComputeReps(&ureps, &ereps);

  baseline::FeatureConfig features;
  features.base = args.features.find("base") != std::string::npos;
  features.cf = args.features.find("cf") != std::string::npos;
  features.rep_vectors = args.features.find("rep") != std::string::npos;
  features.rep_score = args.features.find("score") != std::string::npos;

  baseline::FeatureIndex index(sys->dataset);
  baseline::FeatureAssembler assembler(index, &ureps, &ereps);
  gbdt::DataMatrix train_x, eval_x;
  std::vector<float> train_y, eval_y;
  assembler.Assemble(sys->dataset.combiner_train, features, &train_x,
                     &train_y);
  assembler.Assemble(sys->dataset.eval, features, &eval_x, &eval_y);
  gbdt::GbdtModel combiner;
  gbdt::GbdtConfig gcfg;
  combiner.Train(train_x, train_y, gcfg);
  std::vector<double> probs = combiner.PredictProbabilities(eval_x);
  auto curve = eval::PrecisionRecallCurve(probs, eval_y);
  std::printf("[%s] AUC=%.3f PR60=%.3f PR80=%.3f (%d eval impressions)\n",
              features.Name().c_str(), eval::RocAuc(probs, eval_y),
              eval::PrecisionAtRecall(curve, 0.6),
              eval::PrecisionAtRecall(curve, 0.8), eval_x.num_rows());
  return 0;
}

int CmdSearch(const Args& args) {
  if (args.data.empty() || args.model.empty()) {
    std::fprintf(stderr, "search: --data DIR and --model FILE required\n");
    return 1;
  }
  auto sys = LoadWithModel(args);
  if (!sys.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 sys.status().ToString().c_str());
    return 1;
  }
  if (args.event_id < 0 || args.event_id >= sys->dataset.num_events()) {
    std::fprintf(stderr, "event id out of range\n");
    return 1;
  }
  std::vector<std::vector<float>> ureps, ereps;
  sys->ComputeReps(&ureps, &ereps);
  ann::IvfIndex index;
  ann::IvfConfig ivf;
  ivf.num_lists = 16;
  index.Build(ereps, ivf);
  auto results = index.Search(ereps[static_cast<size_t>(args.event_id)],
                              args.k, /*nprobe=*/4, args.event_id);
  const auto& seed = sys->dataset.events[static_cast<size_t>(args.event_id)];
  std::printf("seed [%s]:", seed.category_name.c_str());
  for (const auto& w : seed.title_words) std::printf(" %s", w.c_str());
  std::printf("\n");
  for (const auto& r : results) {
    const auto& e = sys->dataset.events[static_cast<size_t>(r.id)];
    std::printf("  %.3f [%s]", r.score, e.category_name.c_str());
    for (const auto& w : e.title_words) std::printf(" %s", w.c_str());
    std::printf("\n");
  }
  return 0;
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: evrec_cli <generate|train|eval|search> [flags]\n"
      "  generate --out DIR [--users N] [--events N] [--seed S]\n"
      "  train    --data DIR --model FILE [--epochs N] [--siamese]\n"
      "  eval     --data DIR --model FILE [--features base+cf+rep+score]\n"
      "  search   --data DIR --model FILE --event ID [--k K]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 1;
  }
  SetLogLevel(LogLevel::kWarn);
  Args args;
  if (!Args::Parse(argc, argv, &args)) {
    Usage();
    return 1;
  }
  std::string cmd = argv[1];
  if (cmd == "generate") return CmdGenerate(args);
  if (cmd == "train") return CmdTrain(args);
  if (cmd == "eval") return CmdEval(args);
  if (cmd == "search") return CmdSearch(args);
  Usage();
  return 1;
}
