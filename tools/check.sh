#!/usr/bin/env bash
# Build and run the full test suite, optionally under a sanitizer.
#
#   tools/check.sh                          # plain build + ctest
#   tools/check.sh crash                    # checkpoint/recovery tests under
#                                           # ASan/UBSan and TSan
#   EVREC_SANITIZE=address tools/check.sh   # ASan build + ctest
#   EVREC_SANITIZE=undefined tools/check.sh # UBSan build + ctest
#   EVREC_SANITIZE=thread tools/check.sh    # TSan build + concurrency tests
#
# Each sanitizer uses its own build directory (build-address/,
# build-undefined/, build-thread/) so instrumented and plain objects never
# mix. The thread build runs only the concurrency-heavy suites (obs_test,
# util_test, checkpoint_test for kill-and-resume of the data-parallel
# trainers, parallel_test, serve_test): TSan's ~5-15x slowdown makes the
# full suite impractical, and the remaining tests are single-threaded.
#
# `crash` mode is the fault-recovery gate: it builds the crash-safety
# suites (checkpoint_test, util_test) under ASan/UBSan — torn files and
# bit flips must surface as Status::Corruption, never as an invalid read —
# and then re-runs the resume-determinism tests under TSan, since resumed
# training shares the sharded minibatch engine.
set -euo pipefail

cd "$(dirname "$0")/.."

mode="${1:-}"
jobs="$(nproc 2>/dev/null || echo 4)"

if [ "$mode" = "crash" ]; then
  crash_tests='^(checkpoint_test|util_test)$'
  for san in address undefined thread; do
    build_dir="build-$san"
    echo "== crash mode: $san =="
    cmake -B "$build_dir" -S . -DEVREC_SANITIZE="$san"
    cmake --build "$build_dir" -j"$jobs"
    ctest --test-dir "$build_dir" --output-on-failure -j"$jobs" \
      -R "$crash_tests"
  done
  exit 0
fi

san="${EVREC_SANITIZE:-}"
build_dir="build"
if [ -n "$san" ]; then
  case "$san" in
    address|undefined|thread) build_dir="build-$san" ;;
    *)
      echo "EVREC_SANITIZE must be 'address', 'undefined', or 'thread'" >&2
      exit 2
      ;;
  esac
fi

cmake -B "$build_dir" -S . -DEVREC_SANITIZE="$san"
cmake --build "$build_dir" -j"$jobs"
if [ "$san" = "thread" ]; then
  ctest --test-dir "$build_dir" --output-on-failure -j"$jobs" \
    -R '^(obs_test|util_test|checkpoint_test|parallel_test|serve_test)$'
else
  ctest --test-dir "$build_dir" --output-on-failure -j"$jobs"
fi
