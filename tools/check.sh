#!/usr/bin/env bash
# Build and run the full test suite, optionally under a sanitizer.
#
#   tools/check.sh                          # plain build + ctest
#   tools/check.sh crash                    # checkpoint/recovery tests under
#                                           # ASan/UBSan and TSan
#   tools/check.sh trace                    # end-to-end tracing gate under
#                                           # ASan and TSan
#   tools/check.sh monitor                  # live-telemetry gate: monitor/
#                                           # SLO/health tests under ASan/
#                                           # UBSan/TSan plus OpenMetrics
#                                           # byte-identity across threads
#   tools/check.sh kernels                  # SIMD-kernel gate: parity tests
#                                           # under ASan/UBSan/TSan and under
#                                           # every EVREC_SIMD tier, plus
#                                           # byte-identity of trained models
#                                           # and metrics JSON between
#                                           # EVREC_SIMD=scalar and native
#   tools/check.sh profile                  # profiler gate: profiler tests
#                                           # under ASan/UBSan/TSan plus
#                                           # byte-identity of deterministic
#                                           # profile exports across threads
#   EVREC_SANITIZE=address tools/check.sh   # ASan build + ctest
#   EVREC_SANITIZE=undefined tools/check.sh # UBSan build + ctest
#   EVREC_SANITIZE=thread tools/check.sh    # TSan build + concurrency tests
#
# Each sanitizer uses its own build directory (build-address/,
# build-undefined/, build-thread/) so instrumented and plain objects never
# mix. The thread build runs only the concurrency-heavy suites (obs_test,
# monitor_test for the rolling-window/SLO paths, profile_test for the
# signal handler and lock-free sample ring, util_test,
# checkpoint_test for kill-and-resume of the data-parallel trainers,
# parallel_test, serve_test): TSan's ~5-15x slowdown makes the full suite
# impractical, and the remaining tests are single-threaded.
#
# `crash` mode is the fault-recovery gate: it builds the crash-safety
# suites (checkpoint_test, util_test) under ASan/UBSan — torn files and
# bit flips must surface as Status::Corruption, never as an invalid read —
# and then re-runs the resume-determinism tests under TSan, since resumed
# training shares the sharded minibatch engine.
#
# `trace` mode is the request-tracing gate: under ASan and TSan it runs
# the trace unit suites, then drives the real pipeline end to end
# (`evrec_cli serve-demo --trace-out`), validates the exported Chrome
# trace with `evrec_cli trace`, and diffs the analysis between
# single-threaded and pooled runs — span ids, parent links, and the
# whole report must be identical for any thread count. It also smoke
# tests bench_diff on a synthetic regression.
#
# `monitor` mode is the live-telemetry gate: the monitor/SLO/health suites
# run under ASan, UBSan, and TSan, then the OpenMetrics exposition and the
# full `evrec_cli monitor` fault-storm report are diffed between
# --threads 1 and 4 (byte-identity is the contract), and bench_diff's
# argument diagnostics are exercised (missing file, directory, malformed
# JSON, wrong arity).
set -euo pipefail

cd "$(dirname "$0")/.."

mode="${1:-}"
jobs="$(nproc 2>/dev/null || echo 4)"

if [ "$mode" = "crash" ]; then
  crash_tests='^(checkpoint_test|util_test)$'
  for san in address undefined thread; do
    build_dir="build-$san"
    echo "== crash mode: $san =="
    cmake -B "$build_dir" -S . -DEVREC_SANITIZE="$san"
    cmake --build "$build_dir" -j"$jobs"
    ctest --test-dir "$build_dir" --output-on-failure -j"$jobs" \
      -R "$crash_tests"
  done
  exit 0
fi

if [ "$mode" = "trace" ]; then
  trace_tests='^(obs_test|util_test|serve_test)$'
  for san in address thread; do
    build_dir="build-$san"
    echo "== trace mode: $san =="
    cmake -B "$build_dir" -S . -DEVREC_SANITIZE="$san"
    cmake --build "$build_dir" -j"$jobs"
    ctest --test-dir "$build_dir" --output-on-failure -j"$jobs" \
      -R "$trace_tests"

    work="$(mktemp -d)"
    trap 'rm -rf "$work"' EXIT
    cli="$build_dir/tools/evrec_cli"
    # End-to-end: export a Chrome trace from the demo pipeline, validate
    # and analyze it, and require the analysis to be identical between a
    # single-threaded and a pooled run (the raw files differ only in the
    # display-only tid field).
    (cd "$work" && "$OLDPWD/$cli" serve-demo --threads 1 \
      --trace-out trace1.json > /dev/null)
    (cd "$work" && "$OLDPWD/$cli" serve-demo --threads 4 \
      --trace-out trace4.json > /dev/null)
    "$cli" trace "$work/trace1.json" > "$work/analysis1.txt"
    "$cli" trace "$work/trace4.json" > "$work/analysis4.txt"
    if ! cmp -s "$work/analysis1.txt" "$work/analysis4.txt"; then
      echo "trace analysis differs between --threads 1 and 4" >&2
      diff "$work/analysis1.txt" "$work/analysis4.txt" | head -20 >&2
      exit 1
    fi
    echo "trace analysis identical across thread counts"

    # bench_diff must pass a self-compare and fail a planted regression.
    cat > "$work/base.json" <<'EOF'
{"name": "t", "metrics": {"auc": 0.70, "train_seconds": 10.0}}
EOF
    cat > "$work/bad.json" <<'EOF'
{"name": "t", "metrics": {"auc": 0.60, "train_seconds": 13.0}}
EOF
    "$build_dir/tools/bench_diff" "$work/base.json" "$work/base.json"
    if "$build_dir/tools/bench_diff" "$work/base.json" "$work/bad.json"; then
      echo "bench_diff missed a planted regression" >&2
      exit 1
    fi
    echo "bench_diff gate works"
    rm -rf "$work"
    trap - EXIT
  done
  exit 0
fi

if [ "$mode" = "monitor" ]; then
  monitor_tests='^(monitor_test|obs_test|serve_test)$'
  for san in address undefined thread; do
    build_dir="build-$san"
    echo "== monitor mode: $san =="
    cmake -B "$build_dir" -S . -DEVREC_SANITIZE="$san"
    cmake --build "$build_dir" -j"$jobs"
    ctest --test-dir "$build_dir" --output-on-failure -j"$jobs" \
      -R "$monitor_tests"

    work="$(mktemp -d)"
    trap 'rm -rf "$work"' EXIT
    cli="$build_dir/tools/evrec_cli"
    # The OpenMetrics exposition must be byte-identical for any thread
    # count (env.* metrics are excluded for exactly this reason). Run in
    # sibling directories with the same --out name so nothing path-shaped
    # can leak into the bytes.
    mkdir "$work/t1" "$work/t4"
    (cd "$work/t1" && "$OLDPWD/$cli" metrics --threads 1 \
      --format openmetrics --out metrics.om > /dev/null)
    (cd "$work/t4" && "$OLDPWD/$cli" metrics --threads 4 \
      --format openmetrics --out metrics.om > /dev/null)
    if ! cmp -s "$work/t1/metrics.om" "$work/t4/metrics.om"; then
      echo "openmetrics exposition differs between --threads 1 and 4" >&2
      diff "$work/t1/metrics.om" "$work/t4/metrics.om" | head -20 >&2
      exit 1
    fi
    echo "openmetrics exposition identical across thread counts"

    # Full monitor episode (fault storm -> alerts -> recovery): both the
    # operator report on stdout and the exported exposition must replay
    # byte-identically across thread counts, and the command itself
    # validates the pending->firing->resolved lifecycle (exit 1 if the
    # episode did not play out).
    (cd "$work/t1" && "$OLDPWD/$cli" monitor --threads 1 \
      --out monitor.om > report.txt)
    (cd "$work/t4" && "$OLDPWD/$cli" monitor --threads 4 \
      --out monitor.om > report.txt)
    for f in report.txt monitor.om; do
      if ! cmp -s "$work/t1/$f" "$work/t4/$f"; then
        echo "monitor $f differs between --threads 1 and 4" >&2
        diff "$work/t1/$f" "$work/t4/$f" | head -20 >&2
        exit 1
      fi
    done
    echo "monitor report and exposition identical across thread counts"

    # bench_diff argument diagnostics: each bad input must fail with a
    # pointed message, not a generic parse error.
    bd="$build_dir/tools/bench_diff"
    echo '{"name": "t", "metrics": {"auc": 0.7}}' > "$work/ok.json"
    echo '{oops' > "$work/bad.json"
    if "$bd" "$work/ok.json" "$work/missing.json" 2> "$work/err.txt"; then
      echo "bench_diff accepted a missing file" >&2; exit 1
    fi
    grep -q "no such file" "$work/err.txt"
    if "$bd" "$work/ok.json" "$work" 2> "$work/err.txt"; then
      echo "bench_diff accepted a directory" >&2; exit 1
    fi
    grep -q "is a directory" "$work/err.txt"
    if "$bd" "$work/ok.json" "$work/bad.json" 2> "$work/err.txt"; then
      echo "bench_diff accepted malformed JSON" >&2; exit 1
    fi
    grep -q "malformed JSON" "$work/err.txt"
    if "$bd" "$work/ok.json" 2> "$work/err.txt"; then
      echo "bench_diff accepted one file" >&2; exit 1
    fi
    grep -q "expected exactly two files" "$work/err.txt"
    echo "bench_diff diagnostics ok"
    rm -rf "$work"
    trap - EXIT
  done
  exit 0
fi

if [ "$mode" = "profile" ]; then
  # The profiler gate. Three layers:
  #   1. the profiler suites (signal handler, allocation accountant,
  #      deterministic mode, request table) plus the obs/serve consumers
  #      under ASan, UBSan, and TSan — the SIGPROF smoke test runs under
  #      each, so handler signal-safety and the lock-free ring are
  #      sanitizer-verified;
  #   2. end-to-end byte-identity: `serve-demo --profile-out` exports must
  #      be bit-for-bit identical between --threads 1 and 4 (deterministic
  #      mode is the contract: span-charged costs on the simulated clock);
  #   3. the offline analyzer: the report must reproduce the serve frames
  #      and the SLO-forced request entries, the folded export must be
  #      non-empty flamegraph input, and bench_diff must treat *_bytes
  #      metrics as lower-is-better.
  profile_tests='^(profile_test|obs_test|monitor_test|serve_test)$'
  for san in address undefined thread; do
    build_dir="build-$san"
    echo "== profile mode: $san =="
    cmake -B "$build_dir" -S . -DEVREC_SANITIZE="$san"
    cmake --build "$build_dir" -j"$jobs"
    ctest --test-dir "$build_dir" --output-on-failure -j"$jobs" \
      -R "$profile_tests"
  done

  echo "== profile mode: export byte-identity and analysis =="
  cmake -B build -S .
  cmake --build build -j"$jobs"
  work="$(mktemp -d)"
  trap 'rm -rf "$work"' EXIT
  cli="build/tools/evrec_cli"
  mkdir "$work/t1" "$work/t4"
  (cd "$work/t1" && "$OLDPWD/$cli" serve-demo --threads 1 \
    --profile-out profile.txt --profile-hz 10000 > /dev/null)
  (cd "$work/t4" && "$OLDPWD/$cli" serve-demo --threads 4 \
    --profile-out profile.txt --profile-hz 10000 > /dev/null)
  if ! cmp -s "$work/t1/profile.txt" "$work/t4/profile.txt"; then
    echo "profile export differs between --threads 1 and 4" >&2
    diff "$work/t1/profile.txt" "$work/t4/profile.txt" | head -20 >&2
    exit 1
  fi
  echo "profile export identical across thread counts"

  # The replay's SLO alert must have fired: degraded requests appear as
  # forced entries (trailing field 1) keyed by their trace ids.
  if ! grep -Eq '^request [0-9a-f]{16} [0-9]+ [0-9]+ 1$' \
      "$work/t1/profile.txt"; then
    echo "profile has no slo-forced request entries" >&2
    exit 1
  fi
  echo "slo-forced request entries present"

  # Offline analysis reproduces the serving frames and request table.
  "$cli" profile "$work/t1/profile.txt" --top 5 > "$work/report.txt"
  grep -q "Top 5 frames by self time" "$work/report.txt"
  grep -q "serve.request" "$work/report.txt"
  grep -q "incident-forced" "$work/report.txt"
  "$cli" profile "$work/t1/profile.txt" --folded > "$work/folded.txt"
  if ! [ -s "$work/folded.txt" ]; then
    echo "folded export is empty" >&2
    exit 1
  fi
  echo "profile report and folded export ok"

  # bench_diff infers lower-is-better for *_bytes: a self-compare passes,
  # a planted allocation regression fails.
  cat > "$work/base.json" <<'EOF'
{"name": "t", "metrics": {"auc": 0.70, "epoch_alloc_bytes": 1000.0}}
EOF
  cat > "$work/bloat.json" <<'EOF'
{"name": "t", "metrics": {"auc": 0.70, "epoch_alloc_bytes": 1500.0}}
EOF
  build/tools/bench_diff "$work/base.json" "$work/base.json"
  if build/tools/bench_diff "$work/base.json" "$work/bloat.json"; then
    echo "bench_diff missed a planted allocation regression" >&2
    exit 1
  fi
  echo "bench_diff treats *_bytes as lower-is-better"
  rm -rf "$work"
  trap - EXIT
  exit 0
fi

if [ "$mode" = "kernels" ]; then
  # The SIMD-tier contract gate. Three layers:
  #   1. the kernel parity/dispatch suites (plus the la/nn/serve suites
  #      that consume the kernels) under ASan, UBSan, and TSan;
  #   2. the same parity suite re-run under every EVREC_SIMD override, so
  #      each tier's intrinsics path executes under the sanitizers;
  #   3. end-to-end byte-identity: a trained model file and the metrics
  #      registry JSON must be bit-for-bit identical between
  #      EVREC_SIMD=scalar and the native tier, at --threads 1 and 4.
  #      This is the reason the SIMD level is NOT in the model
  #      fingerprint: the tier must never change trained bits.
  kernel_tests='^(kernel_test|la_test|nn_test|parallel_test|serve_test)$'
  for san in address undefined thread; do
    build_dir="build-$san"
    echo "== kernels mode: $san =="
    cmake -B "$build_dir" -S . -DEVREC_SANITIZE="$san"
    cmake --build "$build_dir" -j"$jobs"
    ctest --test-dir "$build_dir" --output-on-failure -j"$jobs" \
      -R "$kernel_tests"
    for lvl in scalar sse2 avx2; do
      echo "-- kernel_test under EVREC_SIMD=$lvl ($san)"
      EVREC_SIMD="$lvl" "$build_dir/tests/kernel_test" > /dev/null
    done
  done

  echo "== kernels mode: byte-identity scalar vs native =="
  cmake -B build -S .
  cmake --build build -j"$jobs"
  work="$(mktemp -d)"
  trap 'rm -rf "$work"' EXIT
  cli="build/tools/evrec_cli"
  mkdir "$work/data"
  "$cli" generate --out "$work/data" --users 60 --events 60 > /dev/null
  for t in 1 4; do
    EVREC_SIMD=scalar "$cli" train --data "$work/data" \
      --model "$work/model_scalar_t$t.bin" --epochs 2 --threads "$t" \
      > /dev/null
    "$cli" train --data "$work/data" \
      --model "$work/model_native_t$t.bin" --epochs 2 --threads "$t" \
      > /dev/null
  done
  for f in model_scalar_t4.bin model_native_t1.bin model_native_t4.bin; do
    if ! cmp -s "$work/model_scalar_t1.bin" "$work/$f"; then
      echo "trained model $f differs from the scalar --threads 1 run" >&2
      exit 1
    fi
  done
  echo "trained models identical across SIMD tiers and thread counts"

  # metrics --json in sibling dirs with the same file name, so nothing
  # path-shaped can leak into the bytes (same trick as monitor mode).
  for run in scalar_t1 scalar_t4 native_t1 native_t4; do
    mkdir "$work/$run"
  done
  (cd "$work/scalar_t1" && EVREC_SIMD=scalar "$OLDPWD/$cli" metrics \
    --threads 1 --json metrics.json > /dev/null)
  (cd "$work/scalar_t4" && EVREC_SIMD=scalar "$OLDPWD/$cli" metrics \
    --threads 4 --json metrics.json > /dev/null)
  (cd "$work/native_t1" && "$OLDPWD/$cli" metrics \
    --threads 1 --json metrics.json > /dev/null)
  (cd "$work/native_t4" && "$OLDPWD/$cli" metrics \
    --threads 4 --json metrics.json > /dev/null)
  # The registry snapshot includes env/pool series, so it is only promised
  # identical for identical flags: compare scalar vs native per thread
  # count (the SIMD-tier invariant), not across thread counts.
  for t in 1 4; do
    if ! cmp -s "$work/scalar_t$t/metrics.json" \
        "$work/native_t$t/metrics.json"; then
      echo "metrics JSON differs: scalar vs native at --threads $t" >&2
      diff "$work/scalar_t$t/metrics.json" "$work/native_t$t/metrics.json" \
        | head -20 >&2
      exit 1
    fi
  done
  echo "metrics JSON identical between SIMD tiers at each thread count"
  rm -rf "$work"
  trap - EXIT
  exit 0
fi

san="${EVREC_SANITIZE:-}"
build_dir="build"
if [ -n "$san" ]; then
  case "$san" in
    address|undefined|thread) build_dir="build-$san" ;;
    *)
      echo "EVREC_SANITIZE must be 'address', 'undefined', or 'thread'" >&2
      exit 2
      ;;
  esac
fi

cmake -B "$build_dir" -S . -DEVREC_SANITIZE="$san"
cmake --build "$build_dir" -j"$jobs"
if [ "$san" = "thread" ]; then
  ctest --test-dir "$build_dir" --output-on-failure -j"$jobs" \
    -R '^(obs_test|monitor_test|profile_test|util_test|checkpoint_test|parallel_test|serve_test)$'
else
  ctest --test-dir "$build_dir" --output-on-failure -j"$jobs"
fi
