#!/usr/bin/env bash
# Build and run the full test suite, optionally under a sanitizer.
#
#   tools/check.sh                          # plain build + ctest
#   EVREC_SANITIZE=address tools/check.sh   # ASan build + ctest
#   EVREC_SANITIZE=undefined tools/check.sh # UBSan build + ctest
#   EVREC_SANITIZE=thread tools/check.sh    # TSan build + concurrency tests
#
# Each sanitizer uses its own build directory (build-address/,
# build-undefined/, build-thread/) so instrumented and plain objects never
# mix. The thread build runs only the concurrency-heavy suites (obs_test,
# util_test, parallel_test for the data-parallel trainer, serve_test for
# the parallel candidate scorer): TSan's ~5-15x slowdown makes the full
# suite impractical, and the remaining tests are single-threaded.
set -euo pipefail

cd "$(dirname "$0")/.."

san="${EVREC_SANITIZE:-}"
build_dir="build"
if [ -n "$san" ]; then
  case "$san" in
    address|undefined|thread) build_dir="build-$san" ;;
    *)
      echo "EVREC_SANITIZE must be 'address', 'undefined', or 'thread'" >&2
      exit 2
      ;;
  esac
fi

jobs="$(nproc 2>/dev/null || echo 4)"

cmake -B "$build_dir" -S . -DEVREC_SANITIZE="$san"
cmake --build "$build_dir" -j"$jobs"
if [ "$san" = "thread" ]; then
  ctest --test-dir "$build_dir" --output-on-failure -j"$jobs" \
    -R '^(obs_test|util_test|parallel_test|serve_test)$'
else
  ctest --test-dir "$build_dir" --output-on-failure -j"$jobs"
fi
