#!/usr/bin/env bash
# Build and run the full test suite, optionally under a sanitizer.
#
#   tools/check.sh                          # plain build + ctest
#   tools/check.sh crash                    # checkpoint/recovery tests under
#                                           # ASan/UBSan and TSan
#   tools/check.sh trace                    # end-to-end tracing gate under
#                                           # ASan and TSan
#   EVREC_SANITIZE=address tools/check.sh   # ASan build + ctest
#   EVREC_SANITIZE=undefined tools/check.sh # UBSan build + ctest
#   EVREC_SANITIZE=thread tools/check.sh    # TSan build + concurrency tests
#
# Each sanitizer uses its own build directory (build-address/,
# build-undefined/, build-thread/) so instrumented and plain objects never
# mix. The thread build runs only the concurrency-heavy suites (obs_test,
# util_test, checkpoint_test for kill-and-resume of the data-parallel
# trainers, parallel_test, serve_test): TSan's ~5-15x slowdown makes the
# full suite impractical, and the remaining tests are single-threaded.
#
# `crash` mode is the fault-recovery gate: it builds the crash-safety
# suites (checkpoint_test, util_test) under ASan/UBSan — torn files and
# bit flips must surface as Status::Corruption, never as an invalid read —
# and then re-runs the resume-determinism tests under TSan, since resumed
# training shares the sharded minibatch engine.
#
# `trace` mode is the request-tracing gate: under ASan and TSan it runs
# the trace unit suites, then drives the real pipeline end to end
# (`evrec_cli serve-demo --trace-out`), validates the exported Chrome
# trace with `evrec_cli trace`, and diffs the analysis between
# single-threaded and pooled runs — span ids, parent links, and the
# whole report must be identical for any thread count. It also smoke
# tests bench_diff on a synthetic regression.
set -euo pipefail

cd "$(dirname "$0")/.."

mode="${1:-}"
jobs="$(nproc 2>/dev/null || echo 4)"

if [ "$mode" = "crash" ]; then
  crash_tests='^(checkpoint_test|util_test)$'
  for san in address undefined thread; do
    build_dir="build-$san"
    echo "== crash mode: $san =="
    cmake -B "$build_dir" -S . -DEVREC_SANITIZE="$san"
    cmake --build "$build_dir" -j"$jobs"
    ctest --test-dir "$build_dir" --output-on-failure -j"$jobs" \
      -R "$crash_tests"
  done
  exit 0
fi

if [ "$mode" = "trace" ]; then
  trace_tests='^(obs_test|util_test|serve_test)$'
  for san in address thread; do
    build_dir="build-$san"
    echo "== trace mode: $san =="
    cmake -B "$build_dir" -S . -DEVREC_SANITIZE="$san"
    cmake --build "$build_dir" -j"$jobs"
    ctest --test-dir "$build_dir" --output-on-failure -j"$jobs" \
      -R "$trace_tests"

    work="$(mktemp -d)"
    trap 'rm -rf "$work"' EXIT
    cli="$build_dir/tools/evrec_cli"
    # End-to-end: export a Chrome trace from the demo pipeline, validate
    # and analyze it, and require the analysis to be identical between a
    # single-threaded and a pooled run (the raw files differ only in the
    # display-only tid field).
    (cd "$work" && "$OLDPWD/$cli" serve-demo --threads 1 \
      --trace-out trace1.json > /dev/null)
    (cd "$work" && "$OLDPWD/$cli" serve-demo --threads 4 \
      --trace-out trace4.json > /dev/null)
    "$cli" trace "$work/trace1.json" > "$work/analysis1.txt"
    "$cli" trace "$work/trace4.json" > "$work/analysis4.txt"
    if ! cmp -s "$work/analysis1.txt" "$work/analysis4.txt"; then
      echo "trace analysis differs between --threads 1 and 4" >&2
      diff "$work/analysis1.txt" "$work/analysis4.txt" | head -20 >&2
      exit 1
    fi
    echo "trace analysis identical across thread counts"

    # bench_diff must pass a self-compare and fail a planted regression.
    cat > "$work/base.json" <<'EOF'
{"name": "t", "metrics": {"auc": 0.70, "train_seconds": 10.0}}
EOF
    cat > "$work/bad.json" <<'EOF'
{"name": "t", "metrics": {"auc": 0.60, "train_seconds": 13.0}}
EOF
    "$build_dir/tools/bench_diff" "$work/base.json" "$work/base.json"
    if "$build_dir/tools/bench_diff" "$work/base.json" "$work/bad.json"; then
      echo "bench_diff missed a planted regression" >&2
      exit 1
    fi
    echo "bench_diff gate works"
    rm -rf "$work"
    trap - EXIT
  done
  exit 0
fi

san="${EVREC_SANITIZE:-}"
build_dir="build"
if [ -n "$san" ]; then
  case "$san" in
    address|undefined|thread) build_dir="build-$san" ;;
    *)
      echo "EVREC_SANITIZE must be 'address', 'undefined', or 'thread'" >&2
      exit 2
      ;;
  esac
fi

cmake -B "$build_dir" -S . -DEVREC_SANITIZE="$san"
cmake --build "$build_dir" -j"$jobs"
if [ "$san" = "thread" ]; then
  ctest --test-dir "$build_dir" --output-on-failure -j"$jobs" \
    -R '^(obs_test|util_test|checkpoint_test|parallel_test|serve_test)$'
else
  ctest --test-dir "$build_dir" --output-on-failure -j"$jobs"
fi
