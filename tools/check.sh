#!/usr/bin/env bash
# Build and run the full test suite, optionally under a sanitizer.
#
#   tools/check.sh                          # plain build + ctest
#   EVREC_SANITIZE=address tools/check.sh   # ASan build + ctest
#   EVREC_SANITIZE=undefined tools/check.sh # UBSan build + ctest
#
# Each sanitizer uses its own build directory (build-address/,
# build-undefined/) so instrumented and plain objects never mix.
set -euo pipefail

cd "$(dirname "$0")/.."

san="${EVREC_SANITIZE:-}"
build_dir="build"
if [ -n "$san" ]; then
  case "$san" in
    address|undefined) build_dir="build-$san" ;;
    *) echo "EVREC_SANITIZE must be 'address' or 'undefined'" >&2; exit 2 ;;
  esac
fi

jobs="$(nproc 2>/dev/null || echo 4)"

cmake -B "$build_dir" -S . -DEVREC_SANITIZE="$san"
cmake --build "$build_dir" -j"$jobs"
ctest --test-dir "$build_dir" --output-on-failure -j"$jobs"
